// Package fleet is the sharded multi-tenant control plane: one process
// drives N independent auto-scaling control loops — each tenant with its
// own workload trace, forecaster warm state, calibration window, guard
// degradation ladder, circuit breaker and checkpoint namespace — through
// a lock-step replay, batching forecaster inference across tenants on
// the shared worker pool.
//
// The package keeps the single-tenant determinism discipline at fleet
// scale: every tenant's state is fully isolated (per-index writes only),
// all per-tenant randomness derives from a splitmix-mixed seed keyed by
// the tenant index, and the aggregate report folds tenants in index
// order — so per-tenant decisions and the fleet hash are bit-identical
// across worker counts, and a kill-restart resumes to the same totals an
// uninterrupted run produces.
package fleet

import (
	"fmt"
	"time"

	"robustscale/internal/chaos"
	"robustscale/internal/forecast"
	"robustscale/internal/obs"
	"robustscale/internal/persist"
	"robustscale/internal/timeseries"
	"robustscale/internal/trace"
)

// Strategy and forecaster names accepted by Config.
const (
	StrategyRobust      = "robust"
	StrategyAdaptive    = "adaptive"
	StrategyReactiveMax = "reactive-max"

	ForecasterSeasonalNaive = "seasonal-naive"
	ForecasterNaive         = "naive"
	ForecasterQuantileMLP   = "qmlp"
)

// Config sizes and parameterizes a fleet run. Every field that shapes a
// tenant's decisions is part of the checkpoint fingerprint, so a restart
// with different knobs cold-starts instead of silently resuming wrong.
type Config struct {
	// Tenants is the fleet size.
	Tenants int
	// Seed is the fleet master seed; each tenant's trace and model seeds
	// are derived from it and the tenant index.
	Seed int64
	// Days is each tenant's trace length; TrainDays of it are visible
	// history for the forecaster, the rest is replayed.
	Days, TrainDays int
	// Units is the number of machines aggregated into each tenant's
	// trace; small counts keep per-tenant generation cheap at 10k scale.
	Units int
	// Horizon is the planning cadence in steps.
	Horizon int
	// Theta is the per-node workload threshold.
	Theta float64
	// Tau and Tau2 are the quantile levels (robust uses Tau; adaptive
	// uses the pair).
	Tau, Tau2 float64
	// Rho is the adaptive uncertainty threshold; 0 auto-calibrates per
	// tenant from its training fan (deterministically).
	Rho float64
	// Strategy and Forecaster pick the per-tenant planner.
	Strategy, Forecaster string
	// Guard wraps every tenant's strategy in the resilience guard.
	Guard bool
	// Workers bounds the worker pool batching tenant planning and
	// builds; <= 0 uses every CPU. The choice never changes results.
	Workers int
	// StateDir enables per-tenant durable checkpoints under
	// <StateDir>/tenants/<id>/; empty disables durability.
	StateDir string
	// CheckpointInterval writes checkpoints every N fleet rounds.
	CheckpointInterval int
	// Retain is the per-tenant snapshot retention.
	Retain int
	// MaxRounds stops the fleet loop after N rounds (0 = run every
	// tenant to the end of its trace); kill-restart drills use it to
	// stop deterministically at a round boundary.
	MaxRounds int
	// PerTenant includes the per-tenant records in the report.
	PerTenant bool
	// SLOTarget is the fleet-wide violation-rate objective feeding the
	// error-budget tracker and burn-rate alerts; 0 disables the SLO
	// plane (the tracker never observes, so the fleet hash and every
	// per-tenant decision are identical either way).
	SLOTarget float64
	// SLOWindow is the rolling error-budget window in fleet rounds;
	// <= 0 defaults to DefaultSLOWindow when SLOTarget is set.
	SLOWindow int
	// BurnRules overrides the burn-rate alert rules; nil uses
	// obs.DefaultBurnRules(SLOWindow).
	BurnRules []obs.BurnRule
	// PoolNodes caps the fleet's aggregate allocation at every replay
	// step: the shared capacity pool admission control clips plans
	// against. 0 disables the pool (every plan is admitted untouched, so
	// decisions and the fleet hash match a pool-less run bit for bit).
	PoolNodes int
	// QuarantineAfter is the backpressure breaker threshold: a tenant
	// clipped this many consecutive rounds is quarantined to reactive
	// planning instead of thrashing the pool. 0 disables quarantine.
	QuarantineAfter int
	// QuarantineRounds is how many rounds a quarantined tenant plans
	// reactively before re-entering predictive planning (default 8).
	QuarantineRounds int
	// Chaos names the fleet chaos preset (chaos.Preset); "" or "none"
	// disables fault injection entirely.
	Chaos string
	// ChaosSeed seeds the fault schedules; 0 falls back to Seed.
	ChaosSeed int64
	// ChaosTenants restricts tenant-local fault injection to the listed
	// tenant ids (fleet-level classes still fire); empty enrolls every
	// tenant. Single-victim quarantine-isolation drills use this.
	ChaosTenants []string
	// Zones is the number of failure domains tenants stripe across for
	// zone-outage chaos (default 4).
	Zones int
	// Serverless enables the scale-to-zero model: tenants get serverless
	// workload archetypes (deep idle troughs, burst wakes), a joint
	// (count x size) allocation decision, park/wake hysteresis and the
	// wake circuit breaker. Off (the default), every field below is
	// ignored and the fleet is bit-identical to a pre-serverless run.
	Serverless bool
	// IdleEps is the workload level below which a tenant counts as
	// genuinely idle; 0 defaults to Theta/10.
	IdleEps float64
	// WakeSeconds is the fault-free cold-wake latency (default 30).
	WakeSeconds float64
	// WakeCost is the one-time node-step cost of a completed wake
	// (default 2).
	WakeCost float64
	// ParkAfterRounds is how many consecutive idle rounds precede a park
	// (default 3).
	ParkAfterRounds int
	// WakeDebounceRounds blocks re-parking after a wake (default 2).
	WakeDebounceRounds int
	// KeepWarmAfterFails opens the wake breaker — pinning a keep-warm
	// floor — after this many consecutive failed wakes (default 3).
	KeepWarmAfterFails int
	// WakeBreakerCooldown is the breaker's open duration in rounds
	// (default 6).
	WakeBreakerCooldown int
	// WakeSLOSeconds is the p99 wake-latency objective the report grades
	// against (default 1800 — three steps).
	WakeSLOSeconds float64
}

// DefaultSLOWindow is the default error-budget window in fleet rounds.
const DefaultSLOWindow = 48

// DefaultConfig returns a runnable fleet configuration for the given
// tenant count: two training days feeding a seasonal-naive robust
// planner over a 2-hour horizon.
func DefaultConfig(tenants int) Config {
	return Config{
		Tenants:            tenants,
		Seed:               42,
		Days:               4,
		TrainDays:          2,
		Units:              3,
		Horizon:            12,
		Theta:              60,
		Tau:                0.9,
		Tau2:               0.95,
		Strategy:           StrategyRobust,
		Forecaster:         ForecasterSeasonalNaive,
		Guard:              true,
		CheckpointInterval: 1,
		Retain:             persist.DefaultRetain,
		PerTenant:          true,
		SLOTarget:          0.01,
		SLOWindow:          DefaultSLOWindow,
		QuarantineAfter:    3,
		QuarantineRounds:   8,
		Zones:              4,
	}
}

// stepsPerDay at the default 10-minute aggregation step.
func stepsPerDay() int { return int(24 * time.Hour / timeseries.DefaultStep) }

// validate rejects configurations that cannot produce a well-formed run.
func (cfg Config) validate() error {
	if cfg.Tenants <= 0 {
		return fmt.Errorf("fleet: need at least one tenant, got %d", cfg.Tenants)
	}
	if cfg.TrainDays < 1 || cfg.Days <= cfg.TrainDays {
		return fmt.Errorf("fleet: need Days > TrainDays >= 1, got %d/%d", cfg.Days, cfg.TrainDays)
	}
	if cfg.Units <= 0 {
		return fmt.Errorf("fleet: need at least one trace unit per tenant")
	}
	if cfg.Horizon <= 0 {
		return fmt.Errorf("fleet: non-positive horizon %d", cfg.Horizon)
	}
	if replay := (cfg.Days - cfg.TrainDays) * stepsPerDay(); replay < cfg.Horizon {
		return fmt.Errorf("fleet: replay span %d shorter than horizon %d", replay, cfg.Horizon)
	}
	if cfg.Theta <= 0 {
		return fmt.Errorf("fleet: non-positive threshold %v", cfg.Theta)
	}
	switch cfg.Strategy {
	case StrategyRobust, StrategyAdaptive:
		if cfg.Tau <= 0 || cfg.Tau >= 1 {
			return fmt.Errorf("fleet: quantile level %v outside (0, 1)", cfg.Tau)
		}
	case StrategyReactiveMax:
	default:
		return fmt.Errorf("fleet: unknown strategy %q", cfg.Strategy)
	}
	switch cfg.Forecaster {
	case ForecasterSeasonalNaive:
		if cfg.TrainDays < 2 {
			return fmt.Errorf("fleet: seasonal-naive needs TrainDays >= 2 (one full season of history beyond the period)")
		}
	case ForecasterNaive, ForecasterQuantileMLP:
	default:
		return fmt.Errorf("fleet: unknown forecaster %q", cfg.Forecaster)
	}
	if cfg.StateDir != "" && cfg.CheckpointInterval <= 0 {
		return fmt.Errorf("fleet: non-positive checkpoint interval %d", cfg.CheckpointInterval)
	}
	if cfg.SLOTarget < 0 || cfg.SLOTarget >= 1 {
		return fmt.Errorf("fleet: SLO target %v outside [0, 1)", cfg.SLOTarget)
	}
	if cfg.SLOTarget > 0 {
		for _, r := range cfg.BurnRules {
			if r.Factor <= 0 || r.Short < 1 || r.Long < r.Short || r.Long > cfg.SLOWindow {
				return fmt.Errorf("fleet: burn rule %+v invalid for window %d", r, cfg.SLOWindow)
			}
		}
	}
	if cfg.PoolNodes < 0 {
		return fmt.Errorf("fleet: negative pool size %d", cfg.PoolNodes)
	}
	if cfg.QuarantineAfter < 0 || cfg.QuarantineRounds < 0 {
		return fmt.Errorf("fleet: negative quarantine parameters %d/%d", cfg.QuarantineAfter, cfg.QuarantineRounds)
	}
	if cfg.Zones < 0 {
		return fmt.Errorf("fleet: negative zone count %d", cfg.Zones)
	}
	if cfg.Serverless {
		if cfg.IdleEps < 0 {
			return fmt.Errorf("fleet: negative idle threshold %v", cfg.IdleEps)
		}
		if cfg.WakeSeconds < 0 || cfg.WakeCost < 0 || cfg.WakeSLOSeconds < 0 {
			return fmt.Errorf("fleet: negative wake parameters (%v s, %v cost, %v SLO)",
				cfg.WakeSeconds, cfg.WakeCost, cfg.WakeSLOSeconds)
		}
		if cfg.ParkAfterRounds < 0 || cfg.WakeDebounceRounds < 0 ||
			cfg.KeepWarmAfterFails < 0 || cfg.WakeBreakerCooldown < 0 {
			return fmt.Errorf("fleet: negative wake hysteresis parameters")
		}
	}
	if cfg.Chaos != "" && cfg.Chaos != "none" {
		if _, err := chaos.Preset(cfg.Chaos); err != nil {
			return err
		}
	}
	return nil
}

// TenantID formats the canonical id of the tenant at an index; ids are
// valid persist namespaces and sort in index order.
func TenantID(index int) string { return fmt.Sprintf("t%05d", index) }

// deriveSeed mixes the fleet master seed with a tenant index through a
// splitmix64 finalizer, so neighbouring tenants get decorrelated trace
// and model seeds while the mapping stays a pure function of (seed, i).
func deriveSeed(seed int64, index int) int64 {
	z := uint64(seed) + (uint64(index)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z >> 1) // keep it positive for readable fingerprints
}

// tenantTrace derives the workload archetype of one tenant: even indices
// get the diurnal Alibaba-style trace, odd indices the bursty
// Google-style one, so every fleet mixes easy and hard workloads. A
// serverless fleet swaps the pair for the scale-to-zero archetypes:
// burst-wake serverless tenants and sunsetting decaying ones.
func tenantTrace(cfg Config, index int, seed int64) trace.Config {
	var tc trace.Config
	switch {
	case cfg.Serverless && index%2 == 0:
		tc = trace.ServerlessStyle(seed)
	case cfg.Serverless:
		tc = trace.DecayingStyle(seed)
	case index%2 == 0:
		tc = trace.AlibabaStyle(seed)
	default:
		tc = trace.GoogleStyle(seed)
	}
	archetype := tc.Name
	tc.Name = TenantID(index) + "/" + archetype
	tc.Units = cfg.Units
	tc.Days = cfg.Days
	tc.Resources = []trace.Resource{trace.CPU}
	return tc
}

// archetypeOf names the workload archetype of a tenant index. The
// serverless names also land in the checkpoint fingerprint's Dataset
// field, so flipping Config.Serverless cold-starts stale checkpoints
// instead of resuming against the wrong trace.
func archetypeOf(cfg Config, index int) string {
	switch {
	case cfg.Serverless && index%2 == 0:
		return "serverless"
	case cfg.Serverless:
		return "decaying"
	case index%2 == 0:
		return "alibaba"
	}
	return "google"
}

// buildForecaster constructs one tenant's untrained forecaster. The
// quantile-MLP variant runs the allocation-free nn kernels per tenant;
// its tiny dimensions keep a fleet build tractable while still
// exercising the neural path.
func buildForecaster(cfg Config, seed int64) (forecast.QuantileForecaster, forecast.Snapshotter) {
	switch cfg.Forecaster {
	case ForecasterNaive:
		f := forecast.NewNaive(cfg.Horizon)
		return f, f
	case ForecasterQuantileMLP:
		mc := forecast.DefaultMLPConfig()
		mc.Context = 36
		mc.Hidden = 12
		mc.Epochs = 2
		mc.MaxWindows = 64
		mc.Seed = seed
		f := forecast.NewQuantileMLP(mc, forecast.ScalingLevels)
		return f, f
	default: // seasonal-naive
		f := forecast.NewSeasonalNaive(stepsPerDay())
		return f, f
	}
}
