package fleet

import (
	"fmt"
	"sort"

	"robustscale/internal/obs"
)

// TenantReport is the deterministic outcome of one tenant's replay.
// Every field is a pure function of the fleet configuration (plus any
// recovered checkpoints), so the records — and the fleet hash folded
// over them — are bit-identical across worker counts and restarts.
type TenantReport struct {
	ID             string  `json:"id"`
	Archetype      string  `json:"archetype"`
	Seed           int64   `json:"seed"`
	WarmStart      bool    `json:"warm_start"`
	Rounds         int     `json:"rounds"`
	Steps          int     `json:"steps"`
	Violations     int     `json:"violations"`
	ViolationRate  float64 `json:"violation_rate"`
	CostNodeSteps  int64   `json:"cost_node_steps"`
	FinalNodes     int     `json:"final_nodes"`
	Holds          int     `json:"holds,omitempty"`
	DegradedRounds int     `json:"degraded_rounds,omitempty"`
	// AllocHash is the rolling FNV-1a hash over every allocation the
	// tenant committed, carried across restarts.
	AllocHash string `json:"alloc_hash"`
}

// Timing aggregates wall-clock planning latency. It is observational
// only — scheduling noise makes it run-dependent — so determinism checks
// must exclude it (hash `del(.timing)` or just .fleet_hash).
type Timing struct {
	Samples   int     `json:"samples"`
	P50Millis float64 `json:"p50_ms"`
	P90Millis float64 `json:"p90_ms"`
	P99Millis float64 `json:"p99_ms"`
}

// Report is the aggregate outcome of a fleet run.
type Report struct {
	Tenants    int    `json:"tenants"`
	Strategy   string `json:"strategy"`
	Forecaster string `json:"forecaster"`
	Workers    int    `json:"workers"`
	// Rounds counts this process's lock-step fleet rounds; tenant totals
	// below span whole lifetimes (across restarts).
	Rounds        int     `json:"rounds"`
	Steps         int64   `json:"steps"`
	Violations    int64   `json:"violations"`
	ViolationRate float64 `json:"violation_rate"`
	CostNodeSteps int64   `json:"cost_node_steps"`
	Holds         int64   `json:"holds"`
	WarmStarts    int     `json:"warm_starts"`
	ColdStarts    int     `json:"cold_starts"`
	CorruptSnaps  int     `json:"corrupt_snapshots"`
	// Per-tenant distribution of violation rate and cost (percentiles
	// over tenants, deterministic).
	ViolationRateP50 float64 `json:"violation_rate_p50"`
	ViolationRateP90 float64 `json:"violation_rate_p90"`
	ViolationRateP99 float64 `json:"violation_rate_p99"`
	CostP50          float64 `json:"cost_p50"`
	CostP90          float64 `json:"cost_p90"`
	CostP99          float64 `json:"cost_p99"`
	// DecisionsTotal counts decision records captured process-wide (0
	// when capture is disabled); the count is deterministic even though
	// ring order under parallelism is not.
	DecisionsTotal uint64 `json:"decisions_total"`
	// FleetHash folds every tenant's deterministic outcome (id, alloc
	// hash, steps, violations, cost) in index order: one value that pins
	// the entire fleet's decisions bit-for-bit.
	FleetHash string         `json:"fleet_hash"`
	Timing    *Timing        `json:"timing,omitempty"`
	PerTenant []TenantReport `json:"per_tenant,omitempty"`
}

// report assembles the aggregate after the run loop exits.
func (c *Controller) report() *Report {
	r := &Report{
		Tenants:        len(c.tenants),
		Strategy:       c.cfg.Strategy,
		Forecaster:     c.cfg.Forecaster,
		Workers:        c.cfg.Workers,
		Rounds:         c.rounds,
		WarmStarts:     c.warmCount,
		ColdStarts:     c.coldCount,
		CorruptSnaps:   c.corrupt,
		DecisionsTotal: obs.DefaultDecisions.Total(),
	}
	vrates := make([]float64, 0, len(c.tenants))
	costs := make([]float64, 0, len(c.tenants))
	var durations []float64
	hash := uint64(fnvOffset)
	for _, t := range c.tenants {
		tr := TenantReport{
			ID: t.ID, Archetype: t.Archetype, Seed: t.Seed,
			WarmStart: t.warm, Rounds: t.Rounds(),
			Steps: t.steps, Violations: t.violations,
			CostNodeSteps: t.cost, FinalNodes: t.prevAlloc, Holds: t.holds,
			AllocHash: fmt.Sprintf("%016x", t.allocHash),
		}
		if t.steps > 0 {
			tr.ViolationRate = float64(t.violations) / float64(t.steps)
		}
		if t.guard != nil {
			tr.DegradedRounds = t.guard.DegradedRounds()
		}
		r.Steps += int64(t.steps)
		r.Violations += int64(t.violations)
		r.CostNodeSteps += t.cost
		r.Holds += int64(t.holds)
		vrates = append(vrates, tr.ViolationRate)
		costs = append(costs, float64(t.cost))
		durations = append(durations, t.durations...)
		hash = foldString(hash, t.ID)
		hash = foldUint64(hash, t.allocHash)
		hash = foldUint64(hash, uint64(t.steps))
		hash = foldUint64(hash, uint64(t.violations))
		hash = foldUint64(hash, uint64(t.cost))
		if c.cfg.PerTenant {
			r.PerTenant = append(r.PerTenant, tr)
		}
	}
	if r.Steps > 0 {
		r.ViolationRate = float64(r.Violations) / float64(r.Steps)
	}
	r.FleetHash = fmt.Sprintf("%016x", hash)
	r.ViolationRateP50 = percentile(vrates, 50)
	r.ViolationRateP90 = percentile(vrates, 90)
	r.ViolationRateP99 = percentile(vrates, 99)
	r.CostP50 = percentile(costs, 50)
	r.CostP90 = percentile(costs, 90)
	r.CostP99 = percentile(costs, 99)
	if len(durations) > 0 {
		r.Timing = &Timing{
			Samples:   len(durations),
			P50Millis: percentile(durations, 50) * 1e3,
			P90Millis: percentile(durations, 90) * 1e3,
			P99Millis: percentile(durations, 99) * 1e3,
		}
	}
	return r
}

// foldString advances an FNV-1a hash over a string's bytes.
func foldString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// foldUint64 advances an FNV-1a hash over a value's 8 little-endian
// bytes.
func foldUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// percentile is the nearest-rank percentile of a sample (p in (0, 100]);
// the input is not modified.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
