package fleet

import (
	"fmt"
	"sort"

	"robustscale/internal/obs"
)

// TenantReport is the deterministic outcome of one tenant's replay.
// Every field is a pure function of the fleet configuration (plus any
// recovered checkpoints), so the records — and the fleet hash folded
// over them — are bit-identical across worker counts and restarts.
type TenantReport struct {
	ID             string  `json:"id"`
	Archetype      string  `json:"archetype"`
	Seed           int64   `json:"seed"`
	WarmStart      bool    `json:"warm_start"`
	Rounds         int     `json:"rounds"`
	Steps          int     `json:"steps"`
	Violations     int     `json:"violations"`
	ViolationRate  float64 `json:"violation_rate"`
	CostNodeSteps  int64   `json:"cost_node_steps"`
	FinalNodes     int     `json:"final_nodes"`
	Holds          int     `json:"holds,omitempty"`
	DegradedRounds int     `json:"degraded_rounds,omitempty"`
	// AllocHash is the rolling FNV-1a hash over every allocation the
	// tenant committed, carried across restarts.
	AllocHash string `json:"alloc_hash"`
	// Admission-control outcome (lifetime, carried across restarts via
	// the checkpoint Extra section).
	Class          string `json:"class,omitempty"`
	ShedNodes      int64  `json:"shed_nodes,omitempty"`
	ClippedRounds  int    `json:"clipped_rounds,omitempty"`
	Quarantines    int    `json:"quarantines,omitempty"`
	QuarantinedNow bool   `json:"quarantined_now,omitempty"`
	// Faulted reports whether the chaos schedule targets this tenant;
	// blast-radius accounting splits the fleet on it.
	Faulted bool `json:"faulted,omitempty"`
	// Serverless outcome (zero unless the scale-to-zero model is on).
	Parks        int64 `json:"parks,omitempty"`
	Wakes        int64 `json:"wakes,omitempty"`
	WakeFailures int64 `json:"wake_failures,omitempty"`
	ParkedSteps  int64 `json:"parked_steps,omitempty"`
	ParkedNow    bool  `json:"parked_now,omitempty"`
	KeepWarmNow  bool  `json:"keep_warm_now,omitempty"`
}

// Timing aggregates wall-clock planning latency. It is observational
// only — scheduling noise makes it run-dependent — so determinism checks
// must exclude it (hash `del(.timing)` or just .fleet_hash).
type Timing struct {
	Samples   int     `json:"samples"`
	P50Millis float64 `json:"p50_ms"`
	P90Millis float64 `json:"p90_ms"`
	P99Millis float64 `json:"p99_ms"`
}

// WorstTenant is one entry of a heavy-hitter list: a tenant, the
// cumulative weight (violations, node-steps) the tracker observed for
// it this process lifetime, and the space-saving overestimate bound —
// the true weight lies in [Value-Err, Value].
type WorstTenant struct {
	ID    string  `json:"id"`
	Value float64 `json:"value"`
	Err   float64 `json:"err,omitempty"`
}

// worstListSize bounds the worst-tenant lists in the report.
const worstListSize = 8

// Report is the aggregate outcome of a fleet run.
type Report struct {
	Tenants    int    `json:"tenants"`
	Strategy   string `json:"strategy"`
	Forecaster string `json:"forecaster"`
	Workers    int    `json:"workers"`
	// Rounds counts this process's lock-step fleet rounds; tenant totals
	// below span whole lifetimes (across restarts).
	Rounds        int     `json:"rounds"`
	Steps         int64   `json:"steps"`
	Violations    int64   `json:"violations"`
	ViolationRate float64 `json:"violation_rate"`
	CostNodeSteps int64   `json:"cost_node_steps"`
	Holds         int64   `json:"holds"`
	WarmStarts    int     `json:"warm_starts"`
	ColdStarts    int     `json:"cold_starts"`
	CorruptSnaps  int     `json:"corrupt_snapshots"`
	// Per-tenant distribution of violation rate and cost (percentiles
	// over tenants, deterministic).
	ViolationRateP50 float64 `json:"violation_rate_p50"`
	ViolationRateP90 float64 `json:"violation_rate_p90"`
	ViolationRateP99 float64 `json:"violation_rate_p99"`
	CostP50          float64 `json:"cost_p50"`
	CostP90          float64 `json:"cost_p90"`
	CostP99          float64 `json:"cost_p99"`
	// DecisionsTotal counts decision records captured process-wide (0
	// when capture is disabled); the count is deterministic even though
	// ring order under parallelism is not.
	DecisionsTotal uint64 `json:"decisions_total"`
	// FleetHash folds every tenant's deterministic outcome (id, alloc
	// hash, steps, violations, cost) in index order: one value that pins
	// the entire fleet's decisions bit-for-bit.
	FleetHash string         `json:"fleet_hash"`
	Timing    *Timing        `json:"timing,omitempty"`
	PerTenant []TenantReport `json:"per_tenant,omitempty"`
	// WorstViolations and WorstCost are the heavy-hitter tenants from
	// the space-saving trackers streamed over this process's rounds
	// (deterministic: per-round deltas observed in index order).
	WorstViolations []WorstTenant `json:"worst_violations,omitempty"`
	WorstCost       []WorstTenant `json:"worst_cost,omitempty"`
	// SLO is the error-budget state at the end of the run (nil when the
	// SLO plane is disabled).
	SLO *obs.SLOStatus `json:"slo,omitempty"`
	// Pool is the shared-capacity admission outcome (nil with no pool).
	Pool *PoolReport `json:"pool,omitempty"`
	// Chaos summarizes the fault schedule of the run (nil with chaos
	// disabled).
	Chaos *ChaosReport `json:"chaos,omitempty"`
	// Serverless is the fleet-wide scale-to-zero outcome (nil unless the
	// serverless model is on).
	Serverless *ServerlessReport `json:"serverless,omitempty"`
	// BlastRadius is attached after the run when a fault-free baseline
	// was supplied for comparison (MeasureBlastRadius); it never feeds
	// the fleet hash.
	BlastRadius *BlastRadius `json:"blast_radius,omitempty"`
}

// PoolReport aggregates the admission-control outcome of a pooled run.
// The lifetime fields (clips, shed nodes, quarantines) fold per-tenant
// counters persisted in checkpoints, so they are bit-identical across
// worker counts and kill-restarts; ShedRounds and AdmissionRejects count
// this process's rounds only.
type PoolReport struct {
	Nodes int `json:"nodes"`
	// AdmissionClips is the lifetime count of tenant-rounds clipped.
	AdmissionClips int64 `json:"admission_clips"`
	// ShedNodes is the lifetime total of nodes shed across tenants.
	ShedNodes int64 `json:"shed_nodes"`
	// ShedRounds counts this process's rounds with any clipping.
	ShedRounds int `json:"shed_rounds"`
	// AdmissionRejects counts rounds the admission RPC refused (chaos).
	AdmissionRejects int `json:"admission_rejects,omitempty"`
	// Quarantines is the lifetime count of backpressure-breaker trips.
	Quarantines int `json:"quarantines"`
	// QuarantinedNow counts tenants still quarantined at run end.
	QuarantinedNow int `json:"quarantined_now"`
	// PeakUtilization is the highest first-step pool utilization seen
	// this process (1.0 = the pool was fully admitted).
	PeakUtilization float64 `json:"peak_utilization"`
}

// ServerlessReport aggregates the scale-to-zero outcome of a serverless
// fleet run. The lifetime counters fold per-tenant plant and wake-guard
// state persisted in checkpoints; the latency percentiles come from the
// merged per-tenant wake sketches, folded in index order, so every field
// is bit-identical across worker counts and kill-restarts.
type ServerlessReport struct {
	// Parks, Wakes and WakeFailures are lifetime fleet totals.
	Parks        int64 `json:"parks"`
	Wakes        int64 `json:"wakes"`
	WakeFailures int64 `json:"wake_failures"`
	// BreakerTrips counts wake-breaker openings (keep-warm degradations).
	BreakerTrips int64 `json:"breaker_trips"`
	// ParkedNow / KeepWarmNow count tenants in each state at run end.
	ParkedNow   int `json:"parked_now"`
	KeepWarmNow int `json:"keep_warm_now"`
	// ParkedSteps is the lifetime total of zero-capacity steps — the
	// node-steps scale-to-zero did not pay for.
	ParkedSteps int64 `json:"parked_steps"`
	// Wake latency distribution over completed wakes, and the SLO it is
	// graded against.
	WakeP50Seconds float64 `json:"wake_p50_seconds"`
	WakeP99Seconds float64 `json:"wake_p99_seconds"`
	WakeSLOSeconds float64 `json:"wake_slo_seconds"`
	WakeSLOMet     bool    `json:"wake_slo_met"`
	WakeSamples    int     `json:"wake_samples"`
}

// ChaosReport summarizes the deterministic fault schedule of a run.
type ChaosReport struct {
	Preset string `json:"preset"`
	Zones  int    `json:"zones"`
	// FleetEvents counts scheduled fleet-level events (zone outages,
	// pool collapses, admission rejects).
	FleetEvents int `json:"fleet_events"`
	// FaultedTenants counts tenants whose schedules carry any fault.
	FaultedTenants int `json:"faulted_tenants"`
}

// report assembles the aggregate after the run loop exits.
func (c *Controller) report() *Report {
	r := &Report{
		Tenants:        len(c.tenants),
		Strategy:       c.cfg.Strategy,
		Forecaster:     c.cfg.Forecaster,
		Workers:        c.cfg.Workers,
		Rounds:         c.rounds,
		WarmStarts:     c.warmCount,
		ColdStarts:     c.coldCount,
		CorruptSnaps:   c.corrupt,
		DecisionsTotal: obs.DefaultDecisions.Total(),
	}
	// Distributions stream through mergeable sketches — O(buckets)
	// memory however large the fleet — and heavy hitters through
	// space-saving trackers. Observation happens in tenant index order,
	// so every derived figure is deterministic.
	vrSketch := obs.NewSketch(obs.DefaultSketchAlpha)
	costSketch := obs.NewSketch(obs.DefaultSketchAlpha)
	durSketch := obs.NewSketch(obs.DefaultSketchAlpha)
	var pool *PoolReport
	if c.cfg.PoolNodes > 0 {
		pool = &PoolReport{
			Nodes:            c.cfg.PoolNodes,
			ShedRounds:       c.shedRounds,
			AdmissionRejects: c.admissionRejects,
			PeakUtilization:  c.peakUtil,
		}
	}
	var chaosRep *ChaosReport
	if c.chaosSched != nil {
		chaosRep = &ChaosReport{
			Preset:      c.cfg.Chaos,
			Zones:       c.chaosSched.Zones(),
			FleetEvents: len(c.chaosSched.FleetEvents()),
		}
	}
	var sless *ServerlessReport
	var wakeSketch *obs.Sketch
	if c.cfg.Serverless {
		sless = &ServerlessReport{WakeSLOSeconds: c.cfg.WakeSLOSeconds}
		wakeSketch = obs.NewSketch(obs.DefaultSketchAlpha)
	}
	hash := uint64(fnvOffset)
	for _, t := range c.tenants {
		tr := TenantReport{
			ID: t.ID, Archetype: t.Archetype, Seed: t.Seed,
			WarmStart: t.warm, Rounds: t.Rounds(),
			Steps: t.steps, Violations: t.violations,
			CostNodeSteps: t.cost, FinalNodes: t.prevAlloc, Holds: t.holds,
			AllocHash: fmt.Sprintf("%016x", t.allocHash),
			Faulted:   t.faulted,
		}
		if t.steps > 0 {
			tr.ViolationRate = float64(t.violations) / float64(t.steps)
		}
		if t.guard != nil {
			tr.DegradedRounds = t.guard.DegradedRounds()
		}
		if pool != nil {
			tr.Class = t.Class.String()
			tr.ShedNodes = t.shedTotal
			tr.ClippedRounds = t.clippedRounds
			tr.Quarantines = t.quarantines
			tr.QuarantinedNow = t.quarantineLeft > 0
			pool.AdmissionClips += int64(t.clippedRounds)
			pool.ShedNodes += t.shedTotal
			pool.Quarantines += t.quarantines
			if t.quarantineLeft > 0 {
				pool.QuarantinedNow++
			}
		}
		if chaosRep != nil && t.faulted {
			chaosRep.FaultedTenants++
		}
		if sless != nil && t.sless != nil {
			tr.Parks = t.sless.Parks()
			tr.Wakes = t.sless.Wakes()
			tr.WakeFailures = t.sless.WakeFails()
			tr.ParkedSteps = t.parkedSteps
			tr.ParkedNow = t.sless.Parked()
			tr.KeepWarmNow = t.wakeGuard.BreakerOpen()
			sless.Parks += tr.Parks
			sless.Wakes += tr.Wakes
			sless.WakeFailures += tr.WakeFailures
			sless.BreakerTrips += t.wakeGuard.BreakerTrips()
			sless.ParkedSteps += tr.ParkedSteps
			if tr.ParkedNow {
				sless.ParkedNow++
			}
			if tr.KeepWarmNow {
				sless.KeepWarmNow++
			}
			_ = wakeSketch.Merge(t.wakeLat)
		}
		r.Steps += int64(t.steps)
		r.Violations += int64(t.violations)
		r.CostNodeSteps += t.cost
		r.Holds += int64(t.holds)
		vrSketch.Observe(tr.ViolationRate)
		costSketch.Observe(float64(t.cost))
		_ = durSketch.Merge(t.dur)
		hash = foldString(hash, t.ID)
		hash = foldUint64(hash, t.allocHash)
		hash = foldUint64(hash, uint64(t.steps))
		hash = foldUint64(hash, uint64(t.violations))
		hash = foldUint64(hash, uint64(t.cost))
		if c.cfg.PerTenant {
			r.PerTenant = append(r.PerTenant, tr)
		}
	}
	if r.Steps > 0 {
		r.ViolationRate = float64(r.Violations) / float64(r.Steps)
	}
	r.FleetHash = fmt.Sprintf("%016x", hash)
	r.ViolationRateP50 = vrSketch.Percentile(50)
	r.ViolationRateP90 = vrSketch.Percentile(90)
	r.ViolationRateP99 = vrSketch.Percentile(99)
	r.CostP50 = costSketch.Percentile(50)
	r.CostP90 = costSketch.Percentile(90)
	r.CostP99 = costSketch.Percentile(99)
	if durSketch.Count() > 0 {
		r.Timing = &Timing{
			Samples:   int(durSketch.Count()),
			P50Millis: durSketch.Percentile(50) * 1e3,
			P90Millis: durSketch.Percentile(90) * 1e3,
			P99Millis: durSketch.Percentile(99) * 1e3,
		}
	}
	r.WorstViolations = worstEntries(c.worstViol)
	r.WorstCost = worstEntries(c.worstCost)
	if c.slo != nil {
		st := c.slo.Status()
		r.SLO = &st
	}
	r.Pool = pool
	r.Chaos = chaosRep
	if sless != nil {
		sless.WakeSamples = int(wakeSketch.Count())
		if sless.WakeSamples > 0 {
			sless.WakeP50Seconds = wakeSketch.Percentile(50)
			sless.WakeP99Seconds = wakeSketch.Percentile(99)
		}
		// No completed wakes means no latency to breach the objective.
		sless.WakeSLOMet = sless.WakeSamples == 0 || sless.WakeP99Seconds <= sless.WakeSLOSeconds
		r.Serverless = sless
	}
	return r
}

// worstEntries converts a heavy-hitter tracker into the report's list.
func worstEntries(tk *obs.TopK) []WorstTenant {
	top := tk.Top(0)
	out := make([]WorstTenant, len(top))
	for i, e := range top {
		out[i] = WorstTenant{ID: e.Key, Value: e.Count, Err: e.Err}
	}
	return out
}

// foldString advances an FNV-1a hash over a string's bytes.
func foldString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// foldUint64 advances an FNV-1a hash over a value's 8 little-endian
// bytes.
func foldUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// percentile is the nearest-rank percentile of a sample (p in (0, 100]);
// the input is not modified.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
