package fleet

import "robustscale/internal/obs"

// Fleet instruments on the process-wide registry. The per-tenant vecs
// reuse the single-label registry machinery; tenants cache their own
// counter handles at build time so the per-step hot path never pays a
// label lookup.
var (
	fleetTenantsGauge = obs.Default.Gauge(
		"robustscale_fleet_tenants",
		"Tenants managed by the fleet controller.")
	fleetRoundsTotal = obs.Default.Counter(
		"robustscale_fleet_rounds_total",
		"Fleet-wide lock-step planning rounds completed.")
	fleetTenantRounds = obs.Default.CounterVec(
		"robustscale_fleet_tenant_rounds_total",
		"Planning rounds completed, by tenant.",
		"tenant")
	fleetTenantViolations = obs.Default.CounterVec(
		"robustscale_fleet_tenant_violations_total",
		"Threshold violations observed in the fleet replay, by tenant.",
		"tenant")
	fleetWarmStarts = obs.Default.Counter(
		"robustscale_fleet_warm_starts_total",
		"Tenants that warm-started from their checkpoint namespace.")
	fleetColdStarts = obs.Default.Counter(
		"robustscale_fleet_cold_starts_total",
		"Tenants that cold-started (no usable checkpoint).")
	fleetCorruptSnapshots = obs.Default.Counter(
		"robustscale_fleet_corrupt_snapshots_total",
		"Per-tenant snapshot files rejected during fleet recovery.")
	fleetPlanSeconds = obs.Default.Histogram(
		"robustscale_fleet_plan_round_seconds",
		"Wall-clock latency of one tenant planning round inside the fleet batch.",
		obs.LatencyBuckets)

	// Shared capacity pool instruments.
	fleetAdmissionClips = obs.Default.Counter(
		"robustscale_fleet_admission_clips_total",
		"Tenant-rounds clipped by shared-pool admission control.")
	fleetShedRounds = obs.Default.Counter(
		"robustscale_fleet_shed_rounds_total",
		"Fleet rounds where admission control shed at least one node.")
	fleetShedNodesTotal = obs.Default.Counter(
		"robustscale_fleet_shed_nodes_total",
		"Nodes shed by admission control across all tenants and rounds.")
	fleetPoolUtilization = obs.Default.Gauge(
		"robustscale_fleet_pool_utilization",
		"Fraction of the shared node pool admitted at the latest round's first step.")
	fleetAdmissionRejects = obs.Default.Counter(
		"robustscale_fleet_admission_rejects_total",
		"Rounds the admission RPC refused (chaos); tenants held their last admitted allocation.")
	fleetQuarantinesTotal = obs.Default.Counter(
		"robustscale_fleet_quarantines_total",
		"Backpressure-breaker trips quarantining a flapping tenant to reactive planning.")
	fleetQuarantinedGauge = obs.Default.Gauge(
		"robustscale_fleet_quarantined_tenants",
		"Tenants currently quarantined to reactive planning.")

	// Serverless wake instruments. The latency buckets cover the wake
	// spectrum from a fault-free cold start (tens of seconds) through
	// stalled and failed-retry wakes spanning multiple 10-minute steps.
	fleetWakeStarts = obs.Default.CounterVec(
		"robustscale_wake_starts_total",
		"Cold wakes started from zero capacity, by tenant.",
		"tenant")
	fleetWakeFailures = obs.Default.CounterVec(
		"robustscale_wake_failures_total",
		"Wake attempts aborted by injected or real provisioning failures, by tenant.",
		"tenant")
	fleetWakeLatency = obs.Default.HistogramVec(
		"robustscale_wake_latency_seconds",
		"Latency from first demanded step to serving capacity for completed wakes, by tenant.",
		"tenant",
		[]float64{5, 15, 30, 60, 120, 300, 600, 1200, 1800, 3600})
	fleetParkedGauge = obs.Default.Gauge(
		"robustscale_parked_tenants",
		"Tenants currently scaled to zero (parked, no wake in flight).")
	fleetWakeStorms = obs.Default.Counter(
		"robustscale_fleet_wake_storms_total",
		"Wake-storm rounds that forced the parked population awake simultaneously.")
)
