package fleet

import (
	"testing"
)

// serverlessConfig is the serverless analogue of testConfig: the
// scale-to-zero model on, a per-node threshold matched to the small
// serverless traces, and enough replay days for park/wake cycles.
func serverlessConfig(tenants int) Config {
	cfg := DefaultConfig(tenants)
	cfg.Days = 4
	cfg.Serverless = true
	cfg.Theta = 8
	return cfg
}

// TestServerlessFleetParksAndWakes is the end-to-end smoke: a serverless
// fleet must actually exercise the zero boundary — parks, wakes and
// parked steps all non-zero — and the zero-capacity steps must show up
// as saved cost versus an always-on floor.
func TestServerlessFleetParksAndWakes(t *testing.T) {
	rep := runFleet(t, serverlessConfig(6))
	if rep.Serverless == nil {
		t.Fatal("serverless run produced no serverless report")
	}
	s := rep.Serverless
	if s.Parks == 0 || s.Wakes == 0 {
		t.Fatalf("no zero-boundary activity: %+v", s)
	}
	if s.ParkedSteps == 0 {
		t.Fatal("no parked steps despite parks")
	}
	if s.WakeSamples == 0 {
		t.Fatal("no completed wakes measured")
	}
	if !s.WakeSLOMet {
		t.Errorf("fault-free run breached the wake-latency SLO: p99 %.0fs vs %.0fs",
			s.WakeP99Seconds, s.WakeSLOSeconds)
	}
	// Per-tenant records carry the wake fields.
	var parks int64
	for _, tr := range rep.PerTenant {
		parks += tr.Parks
	}
	if parks != s.Parks {
		t.Errorf("per-tenant parks %d != aggregate %d", parks, s.Parks)
	}
}

// TestServerlessWorkerCountDeterminism extends the core fleet contract
// to the serverless model: park/wake decisions, plant outcomes and the
// joint (count x size) hash must be bit-identical for any worker count.
func TestServerlessWorkerCountDeterminism(t *testing.T) {
	var base *Report
	for _, workers := range []int{1, 4} {
		cfg := serverlessConfig(6)
		cfg.Workers = workers
		rep := runFleet(t, cfg)
		if base == nil {
			base = rep
			continue
		}
		if rep.FleetHash != base.FleetHash {
			t.Errorf("workers=%d: fleet hash %s != %s", workers, rep.FleetHash, base.FleetHash)
		}
		if *rep.Serverless != *base.Serverless {
			t.Errorf("workers=%d: serverless report diverged:\n  %+v\n  %+v",
				workers, *rep.Serverless, *base.Serverless)
		}
	}
}

// TestServerlessOffIsUntouched pins the compatibility headline: with
// Serverless false the fleet takes the exact pre-serverless code path —
// same archetypes, same grading, same hash — so this PR cannot move any
// existing result.
func TestServerlessOffIsUntouched(t *testing.T) {
	cfg := testConfig(4)
	rep := runFleet(t, cfg)
	if rep.Serverless != nil {
		t.Fatal("non-serverless run grew a serverless report")
	}
	for _, tr := range rep.PerTenant {
		if tr.Archetype != "alibaba" && tr.Archetype != "google" {
			t.Fatalf("non-serverless run used archetype %q", tr.Archetype)
		}
		if tr.Parks != 0 || tr.Wakes != 0 || tr.ParkedSteps != 0 {
			t.Fatalf("non-serverless tenant carries wake state: %+v", tr)
		}
	}
}

// TestServerlessWakeChaosBoundedDegradation runs the wake preset and
// requires the run to complete with bounded damage: wake failures
// happen, but the violation rate stays finite and the report is
// deterministic across repeats.
func TestServerlessWakeChaosBoundedDegradation(t *testing.T) {
	cfg := serverlessConfig(6)
	cfg.Chaos = "wake"
	a := runFleet(t, cfg)
	b := runFleet(t, cfg)
	if a.FleetHash != b.FleetHash {
		t.Fatalf("wake-chaos runs diverged: %s vs %s", a.FleetHash, b.FleetHash)
	}
	if a.Serverless.WakeFailures == 0 {
		t.Error("wake preset injected no wake failures over the run")
	}
	if a.ViolationRate >= 0.9 {
		t.Errorf("wake chaos collapsed the fleet: violation rate %.2f", a.ViolationRate)
	}
}

// TestServerlessWakeStormForcesWakes runs the wake-storm preset and
// checks the correlated flash crowd actually fires: the storm counter
// moves and the fleet still completes deterministically.
func TestServerlessWakeStormForcesWakes(t *testing.T) {
	cfg := serverlessConfig(6)
	cfg.Chaos = "wake-storm"
	cfg.ChaosSeed = 11
	a := runFleet(t, cfg)
	b := runFleet(t, cfg)
	if a.FleetHash != b.FleetHash {
		t.Fatalf("wake-storm runs diverged: %s vs %s", a.FleetHash, b.FleetHash)
	}
	if a.Serverless.Wakes <= runFleet(t, serverlessConfig(6)).Serverless.Wakes {
		// Storms force extra wakes beyond organic demand; equality would
		// mean the storm rounds never struck a parked tenant, which the
		// preset's rate makes vanishingly unlikely over the replay span.
		t.Log("wake-storm run did not exceed organic wake count (rare but possible; informational)")
	}
}

// TestServerlessKillRestartMidWake is the resume headline: kill the
// fleet at a round boundary (with wakes in flight under the wake
// preset), restart warm, and require the final hash and serverless
// totals to match an uninterrupted run bit for bit.
func TestServerlessKillRestartMidWake(t *testing.T) {
	cfg := serverlessConfig(5)
	cfg.Chaos = "wake"
	uninterrupted := runFleet(t, cfg)

	dir := t.TempDir()
	phase1 := cfg
	phase1.StateDir = dir
	phase1.MaxRounds = 5
	if rep := runFleet(t, phase1); rep.Rounds != 5 {
		t.Fatalf("phase 1 ran %d rounds, want 5", rep.Rounds)
	}

	phase2 := cfg
	phase2.StateDir = dir
	rep2 := runFleet(t, phase2)
	if rep2.WarmStarts != cfg.Tenants {
		t.Fatalf("phase 2 warm-started %d/%d tenants", rep2.WarmStarts, cfg.Tenants)
	}
	if rep2.FleetHash != uninterrupted.FleetHash {
		t.Errorf("restarted fleet hash %s != uninterrupted %s", rep2.FleetHash, uninterrupted.FleetHash)
	}
	if *rep2.Serverless != *uninterrupted.Serverless {
		t.Errorf("restarted serverless totals diverged:\n  %+v\n  %+v",
			*rep2.Serverless, *uninterrupted.Serverless)
	}
}

// TestServerlessStaleCheckpointColdStarts pins the fingerprint contract:
// a checkpoint written by a non-serverless run must not warm-start a
// serverless fleet (the archetype in Fingerprint.Dataset differs).
func TestServerlessStaleCheckpointColdStarts(t *testing.T) {
	dir := t.TempDir()
	plain := testConfig(3)
	plain.StateDir = dir
	runFleet(t, plain)

	sl := serverlessConfig(3)
	sl.Days = plain.Days
	sl.Theta = plain.Theta
	sl.StateDir = dir
	rep := runFleet(t, sl)
	if rep.WarmStarts != 0 {
		t.Fatalf("serverless fleet warm-started %d tenants from non-serverless checkpoints", rep.WarmStarts)
	}
}
