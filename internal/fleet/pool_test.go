package fleet

import (
	"testing"
)

func classesFor(n int) []PriorityClass {
	out := make([]PriorityClass, n)
	for i := range out {
		out[i] = ClassOf(i)
	}
	return out
}

func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func TestAdmitStepUnderCapacityPassesThrough(t *testing.T) {
	demands := []int{3, 5, 2, 4}
	got := admitStep(demands, classesFor(4), 100, nil)
	for i, d := range demands {
		if got[i] != d {
			t.Errorf("admitted[%d] = %d, want untouched %d", i, got[i], d)
		}
	}
}

func TestAdmitStepShedsBestEffortFirst(t *testing.T) {
	// Indices 0..5: classes cycle guaranteed, burstable, best-effort.
	demands := []int{10, 10, 10, 10, 10, 10} // 20 per class, 60 total
	classes := classesFor(6)
	// Capacity 45: shed 15, all from best-effort (indices 2 and 5).
	got := admitStep(demands, classes, 45, nil)
	if total := sum(got); total != 45 {
		t.Fatalf("admitted total %d, want 45", total)
	}
	if got[0] != 10 || got[3] != 10 || got[1] != 10 || got[4] != 10 {
		t.Errorf("guaranteed/burstable clipped before best-effort exhausted: %v", got)
	}
	if got[2]+got[5] != 5 {
		t.Errorf("best-effort should hold the remaining 5, got %v", got)
	}
	// Capacity 30: best-effort zeroed (20), burstable sheds 10 of 20.
	got = admitStep(demands, classes, 30, got)
	if got[2] != 0 || got[5] != 0 {
		t.Errorf("best-effort not zeroed under deeper shed: %v", got)
	}
	if got[0] != 10 || got[3] != 10 {
		t.Errorf("guaranteed clipped while burstable still had capacity: %v", got)
	}
	if got[1]+got[4] != 10 {
		t.Errorf("burstable should shed to 10 total, got %v", got)
	}
	// Capacity 12: only guaranteed survives, proportionally.
	got = admitStep(demands, classes, 12, got)
	if got[1] != 0 || got[4] != 0 || got[2] != 0 || got[5] != 0 {
		t.Errorf("lower classes not zeroed: %v", got)
	}
	if got[0]+got[3] != 12 {
		t.Errorf("guaranteed should share 12, got %v", got)
	}
}

func TestAdmitStepProportionalFairShare(t *testing.T) {
	// One class only: indices 2, 5, 8 are best-effort; the rest demand 0.
	demands := []int{0, 0, 30, 0, 0, 20, 0, 0, 10} // best-effort total 60
	classes := classesFor(9)
	got := admitStep(demands, classes, 30, nil)
	// Halved capacity: proportional split is exactly 15/10/5.
	if got[2] != 15 || got[5] != 10 || got[8] != 5 {
		t.Errorf("proportional split = %d/%d/%d, want 15/10/5", got[2], got[5], got[8])
	}
	// Remainders distribute deterministically: capacity 29 takes the node
	// from the largest fractional remainder.
	got = admitStep(demands, classes, 29, got)
	if sum(got) != 29 {
		t.Fatalf("admitted total %d, want 29", sum(got))
	}
	again := admitStep(demands, classes, 29, nil)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("largest-remainder split not deterministic: %v vs %v", got, again)
		}
	}
}

func TestAdmitStepNegativeAndZero(t *testing.T) {
	got := admitStep([]int{-5, 3, 2}, classesFor(3), 10, nil)
	if got[0] != 0 {
		t.Errorf("negative demand admitted %d, want 0", got[0])
	}
	got = admitStep([]int{4, 4, 4}, classesFor(3), 0, got)
	if sum(got) != 0 {
		t.Errorf("zero capacity admitted %v", got)
	}
	got = admitStep([]int{4, 4, 4}, classesFor(3), -7, got)
	if sum(got) != 0 {
		t.Errorf("negative capacity admitted %v", got)
	}
}

// The fleet-hash regression anchors: these values were produced by the
// pre-pool controller (PR 8) and pin the refactored plan/admit/apply
// path bit-for-bit. A fault-free run with no pool — or an unconstrained
// pool — must keep reproducing them.
const (
	goldenHash4 = "af5067c8c523a956"
	goldenHash8 = "4456542f790ea26b"
)

func TestFleetHashMatchesPrePoolGolden(t *testing.T) {
	for _, tc := range []struct {
		tenants    int
		hash       string
		violations int64
		cost       int64
	}{
		{4, goldenHash4, 10, 1828},
		{8, goldenHash8, 12, 3783},
	} {
		rep := runFleet(t, testConfig(tc.tenants))
		if rep.FleetHash != tc.hash {
			t.Errorf("%d tenants: fleet hash %s, want golden %s", tc.tenants, rep.FleetHash, tc.hash)
		}
		if rep.Violations != tc.violations || rep.CostNodeSteps != tc.cost {
			t.Errorf("%d tenants: violations/cost %d/%d, want %d/%d",
				tc.tenants, rep.Violations, rep.CostNodeSteps, tc.violations, tc.cost)
		}
	}
}

func TestUnconstrainedPoolIsBitIdentical(t *testing.T) {
	base := runFleet(t, testConfig(4))
	cfg := testConfig(4)
	cfg.PoolNodes = 1 << 20
	pooled := runFleet(t, cfg)
	if pooled.FleetHash != base.FleetHash {
		t.Errorf("unconstrained pool changed the fleet hash: %s vs %s", pooled.FleetHash, base.FleetHash)
	}
	if pooled.FleetHash != goldenHash4 {
		t.Errorf("unconstrained pooled hash %s, want golden %s", pooled.FleetHash, goldenHash4)
	}
	if pooled.Pool == nil {
		t.Fatal("pooled run should report the pool section")
	}
	if pooled.Pool.ShedNodes != 0 || pooled.Pool.AdmissionClips != 0 || pooled.Pool.Quarantines != 0 {
		t.Errorf("unconstrained pool shed something: %+v", pooled.Pool)
	}
	if base.Pool != nil {
		t.Error("pool-less run should not report a pool section")
	}
}

func TestConstrainedPoolShedsAndStaysDeterministic(t *testing.T) {
	cfg := testConfig(6)
	cfg.PoolNodes = 10 // well under aggregate demand
	a := runFleet(t, cfg)
	if a.Pool == nil || a.Pool.ShedNodes == 0 {
		t.Fatalf("constrained pool shed nothing: %+v", a.Pool)
	}
	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		b := runFleet(t, cfg)
		if b.FleetHash != a.FleetHash {
			t.Errorf("workers=%d: hash %s, want %s", workers, b.FleetHash, a.FleetHash)
		}
		if b.Pool.ShedNodes != a.Pool.ShedNodes || b.Pool.AdmissionClips != a.Pool.AdmissionClips ||
			b.Pool.Quarantines != a.Pool.Quarantines {
			t.Errorf("workers=%d: pool %+v, want %+v", workers, b.Pool, a.Pool)
		}
	}
	// Aggregate allocation never exceeds the pool: per-step sums are not
	// directly visible in the report, but total cost is bounded by
	// pool * steps-per-tenant... use per-tenant steps (identical tenants).
	var perTenantSteps int64
	for _, tr := range a.PerTenant {
		perTenantSteps = int64(tr.Steps)
		break
	}
	if a.CostNodeSteps > int64(cfg.PoolNodes)*perTenantSteps {
		t.Errorf("fleet cost %d exceeds pool budget %d over %d steps",
			a.CostNodeSteps, cfg.PoolNodes, perTenantSteps)
	}
}

func TestQuarantineTripsUnderSustainedPressure(t *testing.T) {
	cfg := testConfig(6)
	cfg.PoolNodes = 6 // sustained overload: every round clips
	cfg.QuarantineAfter = 2
	cfg.QuarantineRounds = 3
	rep := runFleet(t, cfg)
	if rep.Pool == nil {
		t.Fatal("no pool section")
	}
	if rep.Pool.Quarantines == 0 {
		t.Error("sustained overload should trip the backpressure breaker")
	}
	// Quarantine is journaled per tenant and surfaced in the report.
	found := false
	for _, tr := range rep.PerTenant {
		if tr.Quarantines > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no tenant reports a quarantine trip")
	}
}

func TestPoolClassesSurvivePressure(t *testing.T) {
	// Under moderate pressure, guaranteed tenants shed no more than
	// best-effort tenants in aggregate.
	cfg := testConfig(6)
	cfg.PoolNodes = 12
	cfg.QuarantineAfter = 0 // isolate class behavior from the breaker
	rep := runFleet(t, cfg)
	if rep.Pool == nil || rep.Pool.ShedNodes == 0 {
		t.Skip("pool did not bind at this size")
	}
	var shed [3]int64
	for i, tr := range rep.PerTenant {
		shed[ClassOf(i)] += tr.ShedNodes
	}
	if shed[ClassGuaranteed] > shed[ClassBestEffort] {
		t.Errorf("guaranteed shed %d > best-effort shed %d", shed[ClassGuaranteed], shed[ClassBestEffort])
	}
}
