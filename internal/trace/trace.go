// Package trace generates synthetic cluster resource-usage traces that
// stand in for the Alibaba and Google cluster traces used in the paper's
// evaluation (the originals are multi-terabyte downloads; this repository
// must be self-contained and offline).
//
// The generators reproduce the statistical features that the paper's
// methods rely on and are stressed by:
//
//   - Alibaba-style traces: machine-level resource usage with a strong
//     diurnal cycle, a weekly modulation, autocorrelated noise and
//     occasional load spikes. Aggregating a sampled subset of machines at
//     10-minute intervals yields a fairly predictable cluster trace — the
//     paper's "easy" dataset.
//   - Google-style traces: task-level usage with weak seasonality, bursty
//     arrivals, regime shifts and heavy-tailed spikes. The aggregate is
//     far harder to forecast — Table I shows roughly an order of magnitude
//     higher quantile loss, and the generator is tuned to reproduce that
//     difficulty gap.
//
// Generation is fully deterministic given a seed.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"robustscale/internal/timeseries"
)

// Resource identifies a resource-usage dimension of a trace.
type Resource string

// Resources present in the synthetic traces; the paper's experiments scale
// on CPU utilization.
const (
	CPU    Resource = "cpu"
	Memory Resource = "memory"
	Disk   Resource = "disk"
)

// Trace is a generated cluster trace: one aggregated series per resource,
// plus the per-unit (machine or task) series they were aggregated from.
type Trace struct {
	// Name identifies the trace ("alibaba" or "google").
	Name string
	// Aggregated maps each resource to the cluster-level series obtained
	// by sampling units and summing their usage, aggregated at the
	// configured step.
	Aggregated map[Resource]*timeseries.Series
	// Units holds the per-machine (or per-task) series for each resource.
	Units map[Resource][]*timeseries.Series
}

// Series returns the aggregated series for a resource, or an error if the
// trace does not carry it.
func (t *Trace) Series(r Resource) (*timeseries.Series, error) {
	s, ok := t.Aggregated[r]
	if !ok {
		return nil, fmt.Errorf("trace: %s trace has no %s series", t.Name, r)
	}
	return s, nil
}

// Config controls synthetic trace generation.
type Config struct {
	// Name labels the generated trace.
	Name string
	// Seed makes generation deterministic.
	Seed int64
	// Units is the number of machines (Alibaba) or tasks (Google) to
	// sample and aggregate.
	Units int
	// Days is the trace length in days.
	Days int
	// Step is the aggregation interval; defaults to 10 minutes.
	Step time.Duration
	// Start is the timestamp of the first observation.
	Start time.Time
	// Resources lists the usage dimensions to generate.
	Resources []Resource

	// BaseLoad is the per-unit mean utilization level (arbitrary units,
	// e.g. CPU percentage points of one machine).
	BaseLoad float64
	// DailyAmp is the amplitude of the diurnal cycle relative to BaseLoad
	// (0 disables seasonality).
	DailyAmp float64
	// WeeklyAmp is the amplitude of the weekly modulation relative to
	// BaseLoad.
	WeeklyAmp float64
	// NoiseStd is the standard deviation of the AR(1) noise relative to
	// BaseLoad.
	NoiseStd float64
	// NoisePhi is the AR(1) coefficient of the noise process in [0, 1).
	NoisePhi float64
	// SharedNoiseFrac is the fraction of NoiseStd realized as a single
	// cluster-wide AR(1) demand fluctuation that all units experience
	// together. Per-unit noise averages away under aggregation; the
	// shared component is what keeps the aggregated trace stochastic,
	// as real cluster traces are (common user demand).
	SharedNoiseFrac float64
	// SpikeProb is the per-step probability a unit starts a load spike.
	SpikeProb float64
	// SpikeScale is the mean spike magnitude relative to BaseLoad.
	SpikeScale float64
	// SpikeDecay is the per-step multiplicative decay of an active spike.
	SpikeDecay float64
	// RegimeProb is the per-step probability of a persistent level shift
	// (Google-style workload migration between clusters).
	RegimeProb float64
	// RegimeScale is the magnitude of level shifts relative to BaseLoad.
	RegimeScale float64
	// TrendPerDay is the linear drift per day relative to BaseLoad.
	TrendPerDay float64
	// RampSharpness shapes the diurnal waveform: 1 is a pure sinusoid;
	// smaller values square the wave, concentrating the morning surge and
	// evening drop into sharper ramps (production traces transition in
	// one to two hours, which is what defeats lagging reactive scalers).
	// Defaults to 0.7.
	RampSharpness float64
}

// AlibabaStyle returns the configuration of the Alibaba-like trace: strong
// daily seasonality, mild noise, rare small spikes. Forecasters find this
// trace easy, matching Table I.
func AlibabaStyle(seed int64) Config {
	return Config{
		Name:            "alibaba",
		Seed:            seed,
		Units:           64,
		Days:            28,
		Step:            timeseries.DefaultStep,
		Start:           time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC),
		Resources:       []Resource{CPU, Memory, Disk},
		BaseLoad:        40,
		DailyAmp:        0.55,
		WeeklyAmp:       0.12,
		NoiseStd:        0.05,
		NoisePhi:        0.8,
		SharedNoiseFrac: 0.5,
		SpikeProb:       0.002,
		SpikeScale:      0.5,
		SpikeDecay:      0.6,
		RegimeProb:      0,
		RegimeScale:     0,
		TrendPerDay:     0.004,
		RampSharpness:   0.35,
	}
}

// GoogleStyle returns the configuration of the Google-like trace: weak
// seasonality, bursty heavy-tailed spikes and regime shifts. Forecasters
// find this trace roughly an order of magnitude harder, matching Table I.
func GoogleStyle(seed int64) Config {
	return Config{
		Name:            "google",
		Seed:            seed,
		Units:           64,
		Days:            28,
		Step:            timeseries.DefaultStep,
		Start:           time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC),
		Resources:       []Resource{CPU, Memory},
		BaseLoad:        30,
		DailyAmp:        0.15,
		WeeklyAmp:       0.05,
		NoiseStd:        0.22,
		NoisePhi:        0.55,
		SharedNoiseFrac: 0.7,
		SpikeProb:       0.015,
		SpikeScale:      1.4,
		SpikeDecay:      0.75,
		RegimeProb:      0.0015,
		RegimeScale:     0.35,
		TrendPerDay:     0,
	}
}

// ServerlessStyle returns the configuration of a serverless-tenant trace:
// a small base load with a deep diurnal cycle whose troughs clamp to zero
// (overnight the tenant is genuinely idle), punctuated by sharp
// burst-wake spikes — the flash crowd that hits a parked tenant cold.
// This is the archetype that exercises scale-to-zero: long idle stretches
// reward parking, and the spike trains punish slow or failed wakes.
func ServerlessStyle(seed int64) Config {
	return Config{
		Name:            "serverless",
		Seed:            seed,
		Units:           8,
		Days:            28,
		Step:            timeseries.DefaultStep,
		Start:           time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC),
		Resources:       []Resource{CPU},
		BaseLoad:        1.2,
		DailyAmp:        1.7,
		WeeklyAmp:       0.1,
		NoiseStd:        0.1,
		NoisePhi:        0.6,
		SharedNoiseFrac: 0.6,
		SpikeProb:       0.0015,
		SpikeScale:      8,
		SpikeDecay:      0.7,
		RampSharpness:   0.3,
	}
}

// DecayingStyle returns the configuration of a sunsetting tenant: a
// moderate load with a steady negative drift that clamps to zero in the
// final week. It exercises the permanent-park path — a tenant that goes
// idle and, absent a wake storm, never comes back.
func DecayingStyle(seed int64) Config {
	return Config{
		Name:            "decaying",
		Seed:            seed,
		Units:           16,
		Days:            28,
		Step:            timeseries.DefaultStep,
		Start:           time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC),
		Resources:       []Resource{CPU},
		BaseLoad:        20,
		DailyAmp:        0.3,
		WeeklyAmp:       0.05,
		NoiseStd:        0.08,
		NoisePhi:        0.7,
		SharedNoiseFrac: 0.5,
		SpikeProb:       0.001,
		SpikeScale:      0.4,
		SpikeDecay:      0.6,
		TrendPerDay:     -0.05,
		RampSharpness:   0.5,
	}
}

// Generate produces a trace from the configuration.
func Generate(cfg Config) (*Trace, error) {
	if cfg.Units <= 0 {
		return nil, fmt.Errorf("trace: %s config needs at least one unit", cfg.Name)
	}
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("trace: %s config needs at least one day", cfg.Name)
	}
	if cfg.Step <= 0 {
		cfg.Step = timeseries.DefaultStep
	}
	if len(cfg.Resources) == 0 {
		cfg.Resources = []Resource{CPU}
	}
	stepsPerDay := int(24 * time.Hour / cfg.Step)
	n := cfg.Days * stepsPerDay

	t := &Trace{
		Name:       cfg.Name,
		Aggregated: make(map[Resource]*timeseries.Series, len(cfg.Resources)),
		Units:      make(map[Resource][]*timeseries.Series, len(cfg.Resources)),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, res := range cfg.Resources {
		shared := generateSharedEvents(cfg, n, rng)
		units := make([]*timeseries.Series, cfg.Units)
		for u := 0; u < cfg.Units; u++ {
			units[u] = generateUnit(cfg, res, u, n, shared, rng)
		}
		agg, err := timeseries.Aggregate(cfg.Name+"/"+string(res), units)
		if err != nil {
			return nil, fmt.Errorf("trace: aggregating %s/%s: %w", cfg.Name, res, err)
		}
		t.Units[res] = units
		t.Aggregated[res] = agg
	}
	return t, nil
}

// resourceScale differentiates the resource dimensions: memory moves more
// slowly than CPU, disk is flatter still.
func resourceScale(r Resource) (level, seasonality, noise float64) {
	switch r {
	case Memory:
		return 1.4, 0.5, 0.45
	case Disk:
		return 0.8, 0.25, 0.3
	default: // CPU
		return 1, 1, 1
	}
}

// generateSharedEvents produces cluster-wide burst and regime paths that
// every unit experiences together. Real production incidents (flash sales,
// batch jobs, failovers) hit the whole cluster at once, and without this
// correlated component aggregation over many units would average the
// per-unit spikes away.
func generateSharedEvents(cfg Config, n int, rng *rand.Rand) []float64 {
	shared := make([]float64, n)
	spike := 0.0
	regime := 0.0
	ar := 0.0
	arStd := cfg.NoiseStd * cfg.SharedNoiseFrac
	arInnov := arStd * math.Sqrt(1-cfg.NoisePhi*cfg.NoisePhi)
	for i := 0; i < n; i++ {
		if rng.Float64() < cfg.SpikeProb {
			spike += cfg.SpikeScale * rng.ExpFloat64()
		}
		spike *= cfg.SpikeDecay
		if cfg.RegimeProb > 0 && rng.Float64() < cfg.RegimeProb {
			regime = cfg.RegimeScale * (2*rng.Float64() - 1)
		}
		ar = cfg.NoisePhi*ar + rng.NormFloat64()*arInnov
		shared[i] = spike + regime + ar
	}
	return shared
}

func generateUnit(cfg Config, res Resource, unit, n int, shared []float64, rng *rand.Rand) *timeseries.Series {
	levelMul, seasonMul, noiseMul := resourceScale(res)
	base := cfg.BaseLoad * levelMul * (0.7 + 0.6*rng.Float64())
	phase := rng.Float64() * 2 * math.Pi * 0.15 // mild phase dispersion across units
	dailyAmp := cfg.DailyAmp * seasonMul * base * (0.8 + 0.4*rng.Float64())
	weeklyAmp := cfg.WeeklyAmp * seasonMul * base
	noiseStd := cfg.NoiseStd * noiseMul * base
	stepsPerDay := float64(int(24 * time.Hour / cfg.Step))

	values := make([]float64, n)
	ar := 0.0
	spike := 0.0
	sharpness := cfg.RampSharpness
	if sharpness <= 0 {
		sharpness = 0.7
	}
	for i := 0; i < n; i++ {
		dayFrac := float64(i)/stepsPerDay + phase/(2*math.Pi)
		daily := dailyAmp * sustainedDiurnal(dayFrac, sharpness)
		weekly := weeklyAmp * math.Sin(2*math.Pi*float64(i)/(7*stepsPerDay))
		trend := cfg.TrendPerDay * base * float64(i) / stepsPerDay

		ar = cfg.NoisePhi*ar + rng.NormFloat64()*noiseStd*math.Sqrt(1-cfg.NoisePhi*cfg.NoisePhi)

		// Per-unit spikes on top of the cluster-wide shared events.
		if rng.Float64() < cfg.SpikeProb {
			spike += cfg.SpikeScale * base * rng.ExpFloat64()
		}
		spike *= cfg.SpikeDecay

		v := base + daily + weekly + trend + ar + spike + shared[i]*base
		if v < 0 {
			v = 0
		}
		values[i] = v
	}
	name := fmt.Sprintf("%s/%s/unit-%03d", cfg.Name, res, unit)
	return timeseries.New(name, cfg.Start, cfg.Step, values)
}

// sustainedDiurnal shapes the daily cycle: a sharpened sinusoid with a
// plateau during business hours, closer to production traces than a pure
// sine. Input is time in days; sharpness < 1 squares the wave. Output is
// in [-1, 1].
func sustainedDiurnal(dayFrac, sharpness float64) float64 {
	s := math.Sin(2 * math.Pi * (dayFrac - 0.3))
	return math.Copysign(math.Pow(math.Abs(s), sharpness), s)
}
