package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"robustscale/internal/timeseries"
)

// WriteCSV writes the aggregated series of a trace as CSV with columns
// timestamp (RFC 3339) followed by one column per resource, sorted by
// resource name for determinism.
func (t *Trace) WriteCSV(w io.Writer) error {
	resources := make([]Resource, 0, len(t.Aggregated))
	for r := range t.Aggregated {
		resources = append(resources, r)
	}
	sort.Slice(resources, func(i, j int) bool { return resources[i] < resources[j] })
	if len(resources) == 0 {
		return fmt.Errorf("trace: %s has no series to write", t.Name)
	}

	first := t.Aggregated[resources[0]]
	n := first.Len()
	for _, r := range resources[1:] {
		if t.Aggregated[r].Len() != n {
			return fmt.Errorf("trace: %s resource %s length %d != %d", t.Name, r, t.Aggregated[r].Len(), n)
		}
	}

	cw := csv.NewWriter(w)
	header := make([]string, 1+len(resources))
	header[0] = "timestamp"
	for i, r := range resources {
		header[i+1] = string(r)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	row := make([]string, len(header))
	for i := 0; i < n; i++ {
		row[0] = first.TimeAt(i).Format(time.RFC3339)
		for j, r := range resources {
			row[j+1] = strconv.FormatFloat(t.Aggregated[r].At(i), 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. Per-unit series are not
// round-tripped; only the aggregated series are restored.
func ReadCSV(name string, r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("trace: CSV for %s has no data rows", name)
	}
	header := records[0]
	if len(header) < 2 || header[0] != "timestamp" {
		return nil, fmt.Errorf("trace: CSV for %s has malformed header %v", name, header)
	}
	resources := make([]Resource, len(header)-1)
	for i, h := range header[1:] {
		resources[i] = Resource(h)
	}

	n := len(records) - 1
	start, err := time.Parse(time.RFC3339, records[1][0])
	if err != nil {
		return nil, fmt.Errorf("trace: parsing first timestamp: %w", err)
	}
	step := timeseries.DefaultStep
	if n >= 2 {
		second, err := time.Parse(time.RFC3339, records[2][0])
		if err != nil {
			return nil, fmt.Errorf("trace: parsing second timestamp: %w", err)
		}
		step = second.Sub(start)
	}

	cols := make([][]float64, len(resources))
	for i := range cols {
		cols[i] = make([]float64, n)
	}
	for i, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("trace: CSV row %d has %d fields, want %d", i+1, len(rec), len(header))
		}
		for j := range resources {
			v, err := strconv.ParseFloat(rec[j+1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: CSV row %d column %s: %w", i+1, resources[j], err)
			}
			cols[j][i] = v
		}
	}

	t := &Trace{
		Name:       name,
		Aggregated: make(map[Resource]*timeseries.Series, len(resources)),
		Units:      map[Resource][]*timeseries.Series{},
	}
	for j, res := range resources {
		t.Aggregated[res] = timeseries.New(name+"/"+string(res), start, step, cols[j])
	}
	return t, nil
}
