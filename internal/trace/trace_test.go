package trace

import (
	"bytes"
	"math"
	"testing"
	"time"

	"robustscale/internal/timeseries"
)

func TestGenerateDeterministic(t *testing.T) {
	a1, err := Generate(AlibabaStyle(42))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Generate(AlibabaStyle(42))
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := a1.Series(CPU)
	s2, _ := a2.Series(CPU)
	if s1.Len() != s2.Len() {
		t.Fatalf("lengths differ: %d vs %d", s1.Len(), s2.Len())
	}
	for i := 0; i < s1.Len(); i++ {
		if s1.At(i) != s2.At(i) {
			t.Fatalf("values differ at %d: %v vs %v", i, s1.At(i), s2.At(i))
		}
	}
	a3, err := Generate(AlibabaStyle(43))
	if err != nil {
		t.Fatal(err)
	}
	s3, _ := a3.Series(CPU)
	same := true
	for i := 0; i < s1.Len(); i++ {
		if s1.At(i) != s3.At(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := AlibabaStyle(1)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepsPerDay := int(24 * time.Hour / cfg.Step)
	wantLen := cfg.Days * stepsPerDay
	for _, res := range cfg.Resources {
		s, err := tr.Series(res)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() != wantLen {
			t.Errorf("%s: len = %d, want %d", res, s.Len(), wantLen)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", res, err)
		}
		if s.Min() < 0 {
			t.Errorf("%s: negative usage %v", res, s.Min())
		}
		if len(tr.Units[res]) != cfg.Units {
			t.Errorf("%s: %d unit series, want %d", res, len(tr.Units[res]), cfg.Units)
		}
	}
}

func TestSeriesMissingResource(t *testing.T) {
	tr, err := Generate(GoogleStyle(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Series(Disk); err == nil {
		t.Error("Google trace should not carry disk usage")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := AlibabaStyle(1)
	bad.Units = 0
	if _, err := Generate(bad); err == nil {
		t.Error("Generate should reject zero units")
	}
	bad = AlibabaStyle(1)
	bad.Days = 0
	if _, err := Generate(bad); err == nil {
		t.Error("Generate should reject zero days")
	}
}

func TestGenerateDefaults(t *testing.T) {
	cfg := Config{Name: "min", Seed: 1, Units: 2, Days: 1, BaseLoad: 10}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := tr.Series(CPU)
	if err != nil {
		t.Fatalf("default resources should include CPU: %v", err)
	}
	if s.Step != timeseries.DefaultStep {
		t.Errorf("step = %v, want default", s.Step)
	}
}

// autocorrelation at lag k of a demeaned series.
func autocorr(values []float64, lag int) float64 {
	n := len(values)
	mean := 0.0
	for _, v := range values {
		mean += v
	}
	mean /= float64(n)
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		d := values[i] - mean
		den += d * d
		if i+lag < n {
			num += d * (values[i+lag] - mean)
		}
	}
	return num / den
}

func TestAlibabaHasStrongDailyCycle(t *testing.T) {
	tr, err := Generate(AlibabaStyle(7))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := tr.Series(CPU)
	daily := autocorr(s.Values, 144) // 24h at 10-minute steps
	if daily < 0.5 {
		t.Errorf("daily autocorrelation = %v, want strong (>0.5)", daily)
	}
}

func TestGoogleIsHarderThanAlibaba(t *testing.T) {
	ali, err := Generate(AlibabaStyle(7))
	if err != nil {
		t.Fatal(err)
	}
	goo, err := Generate(GoogleStyle(7))
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := ali.Series(CPU)
	sg, _ := goo.Series(CPU)

	// Compare the coefficient of variation of the residual after removing
	// the daily pattern: Google should be substantially noisier.
	cvResidual := func(s *timeseries.Series) float64 {
		dec, err := timeseries.DecomposeAdditive(s, 144)
		if err != nil {
			t.Fatal(err)
		}
		ss, n := 0.0, 0
		for _, r := range dec.Residual {
			if math.IsNaN(r) {
				continue
			}
			ss += r * r
			n++
		}
		return math.Sqrt(ss/float64(n)) / s.Mean()
	}
	ca, cg := cvResidual(sa), cvResidual(sg)
	if cg < 2*ca {
		t.Errorf("google residual CV %v should be >> alibaba %v", cg, ca)
	}
	// Google seasonality should be weaker.
	if autocorr(sg.Values, 144) > autocorr(sa.Values, 144) {
		t.Error("google trace should have weaker daily autocorrelation than alibaba")
	}
}

func TestGoogleHasSpikes(t *testing.T) {
	tr, err := Generate(GoogleStyle(11))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := tr.Series(CPU)
	mean, std := s.Mean(), s.Std()
	spikes := 0
	for _, v := range s.Values {
		if v > mean+3*std {
			spikes++
		}
	}
	if spikes == 0 {
		t.Error("google trace should contain >3-sigma spikes")
	}
}

func TestResourceDifferentiation(t *testing.T) {
	tr, err := Generate(AlibabaStyle(3))
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := tr.Series(CPU)
	mem, _ := tr.Series(Memory)
	// Memory should run at a higher level and be smoother than CPU.
	if mem.Mean() < cpu.Mean() {
		t.Errorf("memory mean %v should exceed cpu mean %v", mem.Mean(), cpu.Mean())
	}
	cvCPU := cpu.Std() / cpu.Mean()
	cvMem := mem.Std() / mem.Mean()
	if cvMem > cvCPU {
		t.Errorf("memory CV %v should be below cpu CV %v", cvMem, cvCPU)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cfg := AlibabaStyle(9)
	cfg.Days = 2
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("alibaba", &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range cfg.Resources {
		orig, _ := tr.Series(res)
		got, err := back.Series(res)
		if err != nil {
			t.Fatalf("%s missing after round trip", res)
		}
		if got.Len() != orig.Len() {
			t.Fatalf("%s: len %d != %d", res, got.Len(), orig.Len())
		}
		if !got.Start.Equal(orig.Start) || got.Step != orig.Step {
			t.Errorf("%s: start/step mismatch", res)
		}
		for i := 0; i < got.Len(); i++ {
			if got.At(i) != orig.At(i) {
				t.Fatalf("%s[%d]: %v != %v", res, i, got.At(i), orig.At(i))
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", bytes.NewBufferString("")); err == nil {
		t.Error("empty CSV should error")
	}
	if _, err := ReadCSV("x", bytes.NewBufferString("time,cpu\n")); err == nil {
		t.Error("header-only CSV should error")
	}
	if _, err := ReadCSV("x", bytes.NewBufferString("timestamp,cpu\nnot-a-time,1\n")); err == nil {
		t.Error("bad timestamp should error")
	}
	if _, err := ReadCSV("x", bytes.NewBufferString("timestamp,cpu\n2023-09-01T00:00:00Z,abc\n")); err == nil {
		t.Error("bad value should error")
	}
}

func TestSustainedDiurnalRange(t *testing.T) {
	for _, sharp := range []float64{0.35, 0.7, 1} {
		for f := 0.0; f < 2; f += 0.01 {
			v := sustainedDiurnal(f, sharp)
			if v < -1.0001 || v > 1.0001 {
				t.Fatalf("sustainedDiurnal(%v, %v) = %v out of range", f, sharp, v)
			}
		}
	}
}

func TestSharperRampTransitionsFaster(t *testing.T) {
	// A squarer wave spends more time near its extremes: the mean
	// absolute value grows as sharpness shrinks.
	meanAbs := func(sharp float64) float64 {
		sum := 0.0
		n := 0
		for f := 0.0; f < 1; f += 0.001 {
			sum += math.Abs(sustainedDiurnal(f, sharp))
			n++
		}
		return sum / float64(n)
	}
	if meanAbs(0.35) <= meanAbs(1.0) {
		t.Error("sharper waveform should be squarer")
	}
}
