package trace

import "testing"

// TestServerlessStyleHasIdleTroughs pins the property scale-to-zero
// feeds on: the aggregate drops to near-zero overnight, and burst
// spikes rise far above the base level.
func TestServerlessStyleHasIdleTroughs(t *testing.T) {
	tr, err := Generate(ServerlessStyle(42))
	if err != nil {
		t.Fatal(err)
	}
	s, err := tr.Series(CPU)
	if err != nil {
		t.Fatal(err)
	}
	idleEps := 2.0 // aggregate units across 8 tenant shards
	idle, peakMax, sum := 0, 0.0, 0.0
	for i := 0; i < s.Len(); i++ {
		v := s.At(i)
		if v < 0 {
			t.Fatalf("negative workload %v at step %d", v, i)
		}
		if v <= idleEps {
			idle++
		}
		if v > peakMax {
			peakMax = v
		}
		sum += v
	}
	idleFrac := float64(idle) / float64(s.Len())
	if idleFrac < 0.10 {
		t.Errorf("idle fraction %.3f, want >= 0.10 (no troughs to park in)", idleFrac)
	}
	if idleFrac > 0.90 {
		t.Errorf("idle fraction %.3f, want <= 0.90 (never any demand)", idleFrac)
	}
	mean := sum / float64(s.Len())
	if peakMax < 4*mean {
		t.Errorf("peak %.1f vs mean %.1f: spike trains too tame for burst-wake drills", peakMax, mean)
	}
}

// TestDecayingStyleSunsets pins the permanent-park property: the final
// days sit near zero while the first days carry real load.
func TestDecayingStyleSunsets(t *testing.T) {
	tr, err := Generate(DecayingStyle(42))
	if err != nil {
		t.Fatal(err)
	}
	s, err := tr.Series(CPU)
	if err != nil {
		t.Fatal(err)
	}
	stepsPerDay := s.Len() / 28
	head, tail := 0.0, 0.0
	for i := 0; i < 2*stepsPerDay; i++ {
		head += s.At(i)
		tail += s.At(s.Len() - 1 - i)
	}
	head /= float64(2 * stepsPerDay)
	tail /= float64(2 * stepsPerDay)
	if head <= 0 {
		t.Fatalf("decaying trace starts at %v, want positive load", head)
	}
	if tail > head*0.05 {
		t.Errorf("tail mean %.2f vs head mean %.2f: trace does not decay to ~0", tail, head)
	}
}

// TestServerlessArchetypesDeterministic pins seed determinism, which the
// fleet hash depends on.
func TestServerlessArchetypesDeterministic(t *testing.T) {
	for _, mk := range []func(int64) Config{ServerlessStyle, DecayingStyle} {
		a, err := Generate(mk(7))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(mk(7))
		if err != nil {
			t.Fatal(err)
		}
		sa, _ := a.Series(CPU)
		sb, _ := b.Series(CPU)
		for i := 0; i < sa.Len(); i++ {
			if sa.At(i) != sb.At(i) {
				t.Fatalf("%s diverged at step %d", a.Name, i)
			}
		}
	}
}
