package cluster

import (
	"math"
	"testing"

	"robustscale/internal/chaos"
	"robustscale/internal/timeseries"
)

func steadySeries(n int, v float64) (*timeseries.Series, []int) {
	vals := make([]float64, n)
	allocs := make([]int, n)
	for i := range vals {
		vals[i] = v
		allocs[i] = 3
	}
	return timeseries.New("w", t0, timeseries.DefaultStep, vals), allocs
}

// TestReplayWithScheduleLegacyFaultStream pins the migration off the old
// FaultConfig/ReplayWithFaults shim: the seeded node-kill stream that
// chaos.FromFaultConfig reproduces must keep injecting faults, and two
// identical schedule replays must report identically (the determinism the
// deprecated path used to guarantee via its seed).
func TestReplayWithScheduleLegacyFaultStream(t *testing.T) {
	s, allocs := steadySeries(50, 20)

	sched := chaos.FromFaultConfig(0.2, 1, 9, s.Len())
	a := mustNew(t, DefaultConfig(), 3)
	ra, err := a.ReplayWithSchedule(s, allocs, 10, sched)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Failures == 0 {
		t.Error("seeded 20% failure rate injected nothing over 50 steps")
	}

	// Rebuilding the schedule from the same knobs replays identically.
	b := mustNew(t, DefaultConfig(), 3)
	rb, err := b.ReplayWithSchedule(s, allocs, 10, chaos.FromFaultConfig(0.2, 1, 9, s.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if ra.Failures != rb.Failures || ra.ViolationRate != rb.ViolationRate || ra.ScaleOuts != rb.ScaleOuts {
		t.Errorf("seeded schedule replay not deterministic: %+v vs %+v", ra, rb)
	}
}

func TestReplayWithScheduleKillsAndHolds(t *testing.T) {
	s, allocs := steadySeries(10, 20)
	sched := &chaos.Schedule{}
	sched.Add(chaos.Event{Step: 2, Class: chaos.NodeKill, Size: 2})
	// Rejection window covering the replacement scale-out: the fleet
	// holds its post-kill size through steps 3 and 4.
	sched.Add(chaos.Event{Step: 3, Class: chaos.ApplyReject, Size: 2})

	c := mustNew(t, DefaultConfig(), 3)
	report, err := c.ReplayWithSchedule(s, allocs, 100, sched)
	if err != nil {
		t.Fatal(err)
	}
	if report.Failures != 2 {
		t.Errorf("failures = %d, want 2", report.Failures)
	}
	if report.Holds != 2 {
		t.Errorf("holds = %d, want 2", report.Holds)
	}
	// Step 2 replaced the kills immediately (kills strike before the
	// scale action), so the rejected steps held an already-restored fleet.
	if c.Size() != 3 {
		t.Errorf("final size = %d, want 3", c.Size())
	}
}

func TestReplayWithSchedulePartialConverges(t *testing.T) {
	// One partial-fulfilment window over a scale-out from 1 to 4: each
	// step moves halfway, so the fleet converges without ever erroring
	// the replay out.
	n := 6
	vals := make([]float64, n)
	allocs := make([]int, n)
	for i := range vals {
		vals[i] = 5
		allocs[i] = 4
	}
	s := timeseries.New("w", t0, timeseries.DefaultStep, vals)
	sched := &chaos.Schedule{}
	sched.Add(chaos.Event{Step: 0, Class: chaos.ApplyPartial, Size: 3})

	c := mustNew(t, DefaultConfig(), 1)
	report, err := c.ReplayWithSchedule(s, allocs, 100, sched)
	if err != nil {
		t.Fatal(err)
	}
	if report.Holds != 3 {
		t.Errorf("holds = %d, want 3 partial steps", report.Holds)
	}
	if c.Size() != 4 {
		t.Errorf("fleet should converge to 4 after the window, got %d", c.Size())
	}
}

func TestReplayNilScheduleMatchesReplay(t *testing.T) {
	s, allocs := steadySeries(20, 25)
	a := mustNew(t, DefaultConfig(), 3)
	b := mustNew(t, DefaultConfig(), 3)
	ra, err := a.Replay(s, allocs, 10)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.ReplayWithSchedule(s, allocs, 10, &chaos.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	if ra.ViolationRate != rb.ViolationRate || ra.ScaleOuts != rb.ScaleOuts || rb.Holds != 0 {
		t.Errorf("empty schedule diverged: %+v vs %+v", ra, rb)
	}
}

func TestCalibrationSkipsNonFinite(t *testing.T) {
	c, err := NewCalibration([]float64{0.5, 0.9}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(10, []float64{12, 20}); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(math.NaN(), []float64{12, 20}); err != nil {
		t.Fatalf("NaN actual should skip, not error: %v", err)
	}
	if err := c.Observe(10, []float64{math.Inf(1), 20}); err != nil {
		t.Fatalf("Inf quantile should skip, not error: %v", err)
	}
	snap := c.Snapshot()
	if snap.Steps != 1 {
		t.Errorf("window steps = %d, want 1 (bad rows skipped)", snap.Steps)
	}
	if snap.Skipped != 2 {
		t.Errorf("skipped = %d, want 2", snap.Skipped)
	}
	if math.IsNaN(snap.WQL) || math.IsNaN(snap.Coverage[0]) {
		t.Errorf("rolling stats poisoned: %+v", snap)
	}
}

func TestCalibrationHealthCheck(t *testing.T) {
	c, err := NewCalibration([]float64{0.9}, 10)
	if err != nil {
		t.Fatal(err)
	}
	check := c.HealthCheck(0.2, 0, 3)

	// Under minSteps: withholds judgment.
	if ok, _ := check(); !ok {
		t.Error("empty window should stay healthy")
	}
	// Forecasts that never cover: coverage 0 breaches 0.9 - 0.2.
	for i := 0; i < 5; i++ {
		if err := c.Observe(10, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if ok, why := check(); ok || why == "" {
		t.Errorf("coverage breach not detected (ok=%v why=%q)", ok, why)
	}
	// Covering forecasts restore health as the window rolls.
	for i := 0; i < 10; i++ {
		if err := c.Observe(10, []float64{20}); err != nil {
			t.Fatal(err)
		}
	}
	if ok, why := check(); !ok {
		t.Errorf("recovered window still unhealthy: %q", why)
	}
}
