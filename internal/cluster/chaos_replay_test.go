package cluster

import (
	"math"
	"testing"

	"robustscale/internal/chaos"
	"robustscale/internal/timeseries"
)

func steadySeries(n int, v float64) (*timeseries.Series, []int) {
	vals := make([]float64, n)
	allocs := make([]int, n)
	for i := range vals {
		vals[i] = v
		allocs[i] = 3
	}
	return timeseries.New("w", t0, timeseries.DefaultStep, vals), allocs
}

// TestDeprecatedReplayWithFaultsShim is the single remaining test of the
// deprecated FaultConfig/ReplayWithFaults path: it pins validation and
// the shim's equivalence to ReplayWithSchedule over the legacy fault
// stream. All other coverage uses ReplayWithSchedule directly.
func TestDeprecatedReplayWithFaultsShim(t *testing.T) {
	s, allocs := steadySeries(50, 20)

	bad := []FaultConfig{
		{FailureProb: -0.1},
		{FailureProb: 1.5},
		{FailureProb: 0.1, FailureSize: -1, Seed: 1},
		{FailureProb: 0.1}, // positive probability without a seed
	}
	c := mustNew(t, DefaultConfig(), 3)
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d (%+v): expected validation error", i, f)
		}
		if _, err := c.ReplayWithFaults(s, allocs, 10, f); err == nil {
			t.Errorf("case %d (%+v): replay accepted invalid config", i, f)
		}
	}
	if err := (FaultConfig{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}

	// The shim must report exactly what ReplayWithSchedule reports over
	// the schedule FromFaultConfig derives from the same knobs.
	cfg := FaultConfig{FailureProb: 0.2, FailureSize: 1, Seed: 9}
	legacy := mustNew(t, DefaultConfig(), 3)
	lr, err := legacy.ReplayWithFaults(s, allocs, 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct := mustNew(t, DefaultConfig(), 3)
	dr, err := direct.ReplayWithSchedule(s, allocs, 10,
		chaos.FromFaultConfig(cfg.FailureProb, cfg.FailureSize, cfg.Seed, s.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if lr.Failures != dr.Failures || lr.ViolationRate != dr.ViolationRate || lr.ScaleOuts != dr.ScaleOuts {
		t.Errorf("shim diverged from schedule replay: %+v vs %+v", lr, dr)
	}
	if lr.Failures == 0 {
		t.Error("seeded 20%% failure rate injected nothing over 50 steps")
	}
}

func TestReplayWithScheduleKillsAndHolds(t *testing.T) {
	s, allocs := steadySeries(10, 20)
	sched := &chaos.Schedule{}
	sched.Add(chaos.Event{Step: 2, Class: chaos.NodeKill, Size: 2})
	// Rejection window covering the replacement scale-out: the fleet
	// holds its post-kill size through steps 3 and 4.
	sched.Add(chaos.Event{Step: 3, Class: chaos.ApplyReject, Size: 2})

	c := mustNew(t, DefaultConfig(), 3)
	report, err := c.ReplayWithSchedule(s, allocs, 100, sched)
	if err != nil {
		t.Fatal(err)
	}
	if report.Failures != 2 {
		t.Errorf("failures = %d, want 2", report.Failures)
	}
	if report.Holds != 2 {
		t.Errorf("holds = %d, want 2", report.Holds)
	}
	// Step 2 replaced the kills immediately (kills strike before the
	// scale action), so the rejected steps held an already-restored fleet.
	if c.Size() != 3 {
		t.Errorf("final size = %d, want 3", c.Size())
	}
}

func TestReplayWithSchedulePartialConverges(t *testing.T) {
	// One partial-fulfilment window over a scale-out from 1 to 4: each
	// step moves halfway, so the fleet converges without ever erroring
	// the replay out.
	n := 6
	vals := make([]float64, n)
	allocs := make([]int, n)
	for i := range vals {
		vals[i] = 5
		allocs[i] = 4
	}
	s := timeseries.New("w", t0, timeseries.DefaultStep, vals)
	sched := &chaos.Schedule{}
	sched.Add(chaos.Event{Step: 0, Class: chaos.ApplyPartial, Size: 3})

	c := mustNew(t, DefaultConfig(), 1)
	report, err := c.ReplayWithSchedule(s, allocs, 100, sched)
	if err != nil {
		t.Fatal(err)
	}
	if report.Holds != 3 {
		t.Errorf("holds = %d, want 3 partial steps", report.Holds)
	}
	if c.Size() != 4 {
		t.Errorf("fleet should converge to 4 after the window, got %d", c.Size())
	}
}

func TestReplayNilScheduleMatchesReplay(t *testing.T) {
	s, allocs := steadySeries(20, 25)
	a := mustNew(t, DefaultConfig(), 3)
	b := mustNew(t, DefaultConfig(), 3)
	ra, err := a.Replay(s, allocs, 10)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.ReplayWithSchedule(s, allocs, 10, &chaos.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	if ra.ViolationRate != rb.ViolationRate || ra.ScaleOuts != rb.ScaleOuts || rb.Holds != 0 {
		t.Errorf("empty schedule diverged: %+v vs %+v", ra, rb)
	}
}

func TestCalibrationSkipsNonFinite(t *testing.T) {
	c, err := NewCalibration([]float64{0.5, 0.9}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(10, []float64{12, 20}); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(math.NaN(), []float64{12, 20}); err != nil {
		t.Fatalf("NaN actual should skip, not error: %v", err)
	}
	if err := c.Observe(10, []float64{math.Inf(1), 20}); err != nil {
		t.Fatalf("Inf quantile should skip, not error: %v", err)
	}
	snap := c.Snapshot()
	if snap.Steps != 1 {
		t.Errorf("window steps = %d, want 1 (bad rows skipped)", snap.Steps)
	}
	if snap.Skipped != 2 {
		t.Errorf("skipped = %d, want 2", snap.Skipped)
	}
	if math.IsNaN(snap.WQL) || math.IsNaN(snap.Coverage[0]) {
		t.Errorf("rolling stats poisoned: %+v", snap)
	}
}

func TestCalibrationHealthCheck(t *testing.T) {
	c, err := NewCalibration([]float64{0.9}, 10)
	if err != nil {
		t.Fatal(err)
	}
	check := c.HealthCheck(0.2, 0, 3)

	// Under minSteps: withholds judgment.
	if ok, _ := check(); !ok {
		t.Error("empty window should stay healthy")
	}
	// Forecasts that never cover: coverage 0 breaches 0.9 - 0.2.
	for i := 0; i < 5; i++ {
		if err := c.Observe(10, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if ok, why := check(); ok || why == "" {
		t.Errorf("coverage breach not detected (ok=%v why=%q)", ok, why)
	}
	// Covering forecasts restore health as the window rolls.
	for i := 0; i < 10; i++ {
		if err := c.Observe(10, []float64{20}); err != nil {
			t.Fatal(err)
		}
	}
	if ok, why := check(); !ok {
		t.Errorf("recovered window still unhealthy: %q", why)
	}
}
