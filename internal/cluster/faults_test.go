package cluster

import (
	"testing"
	"time"

	"robustscale/internal/chaos"
	"robustscale/internal/timeseries"
)

func TestKillRemovesNodesButKeepsOne(t *testing.T) {
	c := mustNew(t, DefaultConfig(), 4)
	if got := c.Kill(2); got != 2 {
		t.Errorf("killed = %d", got)
	}
	if c.Size() != 2 {
		t.Errorf("size = %d", c.Size())
	}
	// Killing more than available leaves the last node standing.
	if got := c.Kill(10); got != 1 {
		t.Errorf("killed = %d", got)
	}
	if c.Size() != 1 {
		t.Errorf("size = %d", c.Size())
	}
	if c.Failures != 3 {
		t.Errorf("failures = %d", c.Failures)
	}
}

func TestKillThenScaleToReplacesWithWarmup(t *testing.T) {
	cfg := Config{CheckpointMB: 1024, LoadBandwidthMBps: 256, BaseWarmup: time.Second} // 5s warmup
	c := mustNew(t, cfg, 3)
	c.Kill(2)
	if err := c.ScaleTo(3); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 3 {
		t.Errorf("size = %d", c.Size())
	}
	// Replacements are warming.
	if c.ReadyCount() != 1 {
		t.Errorf("ready = %d", c.ReadyCount())
	}
	c.Advance(10 * time.Second)
	if c.ReadyCount() != 3 {
		t.Errorf("ready after warmup = %d", c.ReadyCount())
	}
}

func TestReplayWithScheduleInjectsAndRecovers(t *testing.T) {
	// A long steady workload at 3 nodes: injected failures get replaced
	// at the next step, so only brief capacity dips occur.
	n := 200
	vals := make([]float64, n)
	allocs := make([]int, n)
	for i := range vals {
		vals[i] = 25
		allocs[i] = 3
	}
	s := timeseries.New("w", t0, timeseries.DefaultStep, vals)
	c := mustNew(t, DefaultConfig(), 3)
	report, err := c.ReplayWithSchedule(s, allocs, 10, chaos.FromFaultConfig(0.1, 1, 5, n))
	if err != nil {
		t.Fatal(err)
	}
	if report.Failures == 0 {
		t.Fatal("no failures injected at 10% per step over 200 steps")
	}
	// Every failure forces a replacement scale-out.
	if report.ScaleOuts < report.Failures {
		t.Errorf("scaleOuts %d < failures %d", report.ScaleOuts, report.Failures)
	}
	// With seconds-scale warm-up, recovery is fast enough that most steps
	// stay under threshold (25/3 = 8.3 < 10 leaves ~20%% headroom).
	if report.ViolationRate > 0.1 {
		t.Errorf("violation rate = %v", report.ViolationRate)
	}
}

func TestReplayWithScheduleTightPlansSuffer(t *testing.T) {
	// Same workload, but allocations sized exactly to the threshold: any
	// failure step runs the cluster hot until the replacement warms up.
	n := 200
	vals := make([]float64, n)
	allocs := make([]int, n)
	for i := range vals {
		vals[i] = 29.5 // 29.5/3 = 9.83, just under theta=10
		allocs[i] = 3
	}
	s := timeseries.New("w", t0, timeseries.DefaultStep, vals)

	// A deliberately slow warm-up (half the step) so a failed node's
	// replacement cannot absorb load immediately.
	slow := Config{CheckpointMB: 300 * 1024, LoadBandwidthMBps: 1024}
	clean := mustNew(t, slow, 3)
	cleanReport, err := clean.Replay(s, allocs, 10)
	if err != nil {
		t.Fatal(err)
	}
	faulty := mustNew(t, slow, 3)
	faultyReport, err := faulty.ReplayWithSchedule(s, allocs, 10, chaos.FromFaultConfig(0.2, 1, 6, n))
	if err != nil {
		t.Fatal(err)
	}
	if faultyReport.ViolationRate <= cleanReport.ViolationRate {
		t.Errorf("faults should raise violations: %v vs %v",
			faultyReport.ViolationRate, cleanReport.ViolationRate)
	}
}

func TestReplayWithScheduleDeterministic(t *testing.T) {
	n := 50
	vals := make([]float64, n)
	allocs := make([]int, n)
	for i := range vals {
		vals[i] = 20
		allocs[i] = 3
	}
	s := timeseries.New("w", t0, timeseries.DefaultStep, vals)
	run := func() int {
		c := mustNew(t, DefaultConfig(), 3)
		r, err := c.ReplayWithSchedule(s, allocs, 10, chaos.FromFaultConfig(0.2, 1, 9, n))
		if err != nil {
			t.Fatal(err)
		}
		return r.Failures
	}
	if run() != run() {
		t.Error("same seed should inject identically")
	}
}
