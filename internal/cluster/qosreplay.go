package cluster

import (
	"fmt"
	"time"

	"robustscale/internal/qos"
	"robustscale/internal/timeseries"
)

// QoSStepStat is one step of a latency-aware replay.
type QoSStepStat struct {
	Time time.Time
	// ArrivalRate is the cluster-wide query rate.
	ArrivalRate float64
	// Capacity is the warm-up-adjusted node capacity over the step.
	Capacity float64
	// PerNodeRate is the load each serving node absorbs.
	PerNodeRate float64
	// Latency is the modeled response-time distribution of one node.
	Latency qos.Latency
	// SLOViolated reports whether the step missed the objective.
	SLOViolated bool
}

// QoSReplayReport summarizes a latency-aware replay.
type QoSReplayReport struct {
	Steps          []QoSStepStat
	SLOViolations  int
	ViolationRate  float64
	WorstP99       time.Duration
	MeanUtilzation float64
}

// ReplayQoS drives the cluster with per-step allocations against a
// workload expressed as a query arrival rate, modeling each node as an
// M/M/c station and grading every step against a latency SLO. It turns
// the abstract "threshold" of the scaling formulation into the
// quality-of-service outcome operators actually care about (the analysis
// the paper defers in Section V-B).
func (c *Cluster) ReplayQoS(workload *timeseries.Series, allocations []int, node qos.Node, slo qos.SLO) (*QoSReplayReport, error) {
	if workload.Len() != len(allocations) {
		return nil, fmt.Errorf("cluster: %d workload steps vs %d allocations", workload.Len(), len(allocations))
	}
	if err := node.Validate(); err != nil {
		return nil, err
	}
	if err := slo.Validate(); err != nil {
		return nil, err
	}
	report := &QoSReplayReport{Steps: make([]QoSStepStat, workload.Len())}
	utilSum := 0.0
	for i := 0; i < workload.Len(); i++ {
		if err := c.ScaleTo(allocations[i]); err != nil {
			return nil, fmt.Errorf("cluster: step %d: %w", i, err)
		}
		capacity := c.EffectiveCapacity(workload.Step)
		if capacity < 1e-9 {
			capacity = 1e-9
		}
		rate := workload.At(i)
		perNode := rate / capacity
		lat, err := qos.NodeLatency(node, perNode)
		if err != nil {
			return nil, fmt.Errorf("cluster: step %d latency: %w", i, err)
		}
		var observed time.Duration
		switch {
		case slo.Percentile >= 0.99:
			observed = lat.P99
		case slo.Percentile >= 0.95:
			observed = lat.P95
		default:
			observed = lat.Mean
		}
		stat := QoSStepStat{
			Time:        c.now,
			ArrivalRate: rate,
			Capacity:    capacity,
			PerNodeRate: perNode,
			Latency:     *lat,
			SLOViolated: observed > slo.Target,
		}
		if stat.SLOViolated {
			report.SLOViolations++
		}
		if lat.P99 > report.WorstP99 {
			report.WorstP99 = lat.P99
		}
		utilSum += lat.Utilization
		report.Steps[i] = stat
		c.Advance(workload.Step)
	}
	report.ViolationRate = float64(report.SLOViolations) / float64(len(report.Steps))
	report.MeanUtilzation = utilSum / float64(len(report.Steps))
	return report, nil
}
