package cluster

import (
	"encoding/gob"
	"fmt"
	"io"
)

// calibrationState is the gob image of a calibration window: the config
// plus the retained observations oldest-first. Rolling sums and gauge
// values are not persisted — Load re-observes the window, which rebuilds
// both exactly and re-exports the gauges on the restarted process.
type calibrationState struct {
	Levels  []float64
	Window  int
	Actuals []float64
	Preds   [][]float64
	Skipped uint64
}

// Save writes the rolling window so a restarted control plane resumes
// forecast-health monitoring with its accumulated evidence instead of a
// blind warm-up period.
func (c *Calibration) Save(w io.Writer) error {
	c.mu.Lock()
	st := calibrationState{
		Levels:  append([]float64(nil), c.levels...),
		Window:  c.window,
		Skipped: c.skipped,
	}
	for i := 0; i < c.count; i++ {
		idx := (c.next - c.count + i + c.window) % c.window
		st.Actuals = append(st.Actuals, c.actuals[idx])
		st.Preds = append(st.Preds, append([]float64(nil), c.preds[idx]...))
	}
	c.mu.Unlock()
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("cluster: saving calibration: %w", err)
	}
	return nil
}

// LoadCalibration restores a tracker saved by Save, re-registering its
// gauges on obs.Default and replaying the retained window so every
// rolling sum and exported gauge matches the checkpointed process.
func LoadCalibration(r io.Reader) (*Calibration, error) {
	var st calibrationState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("cluster: loading calibration: %w", err)
	}
	if len(st.Actuals) != len(st.Preds) {
		return nil, fmt.Errorf("cluster: calibration snapshot has %d actuals for %d prediction rows",
			len(st.Actuals), len(st.Preds))
	}
	if len(st.Actuals) > st.Window {
		return nil, fmt.Errorf("cluster: calibration snapshot holds %d observations for a %d-step window",
			len(st.Actuals), st.Window)
	}
	c, err := NewCalibration(st.Levels, st.Window)
	if err != nil {
		return nil, fmt.Errorf("cluster: loading calibration: %w", err)
	}
	for i, actual := range st.Actuals {
		if err := c.Observe(actual, st.Preds[i]); err != nil {
			return nil, fmt.Errorf("cluster: replaying calibration window: %w", err)
		}
	}
	c.mu.Lock()
	c.skipped = st.Skipped
	c.mu.Unlock()
	return c, nil
}
