package cluster

import (
	"bytes"
	"math"
	"testing"
)

func TestCalibrationSaveLoadRoundTrip(t *testing.T) {
	c, err := NewCalibration([]float64{0.5, 0.9}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Fill past the window so eviction state is exercised, plus one
	// skipped non-finite observation.
	for i := 0; i < 12; i++ {
		v := 10 + float64(i)
		if err := c.Observe(v, []float64{v - 1, v + 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Observe(math.NaN(), []float64{1, 2}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadCalibration(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, got := c.Snapshot(), c2.Snapshot()
	if got.Steps != want.Steps || got.Skipped != want.Skipped {
		t.Fatalf("steps/skipped: got (%d, %d), want (%d, %d)", got.Steps, got.Skipped, want.Steps, want.Skipped)
	}
	if got.WQL != want.WQL {
		t.Fatalf("wQL: got %v, want %v", got.WQL, want.WQL)
	}
	for i := range want.Coverage {
		if got.Coverage[i] != want.Coverage[i] {
			t.Fatalf("coverage[%d]: got %v, want %v", i, got.Coverage[i], want.Coverage[i])
		}
	}
	// The restored tracker keeps rolling correctly: both see the same
	// statistics after further identical observations.
	for i := 0; i < 5; i++ {
		v := 30 + float64(i)
		if err := c.Observe(v, []float64{v, v + 1}); err != nil {
			t.Fatal(err)
		}
		if err := c2.Observe(v, []float64{v, v + 1}); err != nil {
			t.Fatal(err)
		}
	}
	want, got = c.Snapshot(), c2.Snapshot()
	if got.WQL != want.WQL || got.Steps != want.Steps {
		t.Fatalf("post-restore divergence: got (%v, %d), want (%v, %d)", got.WQL, got.Steps, want.WQL, want.Steps)
	}
}

func TestLoadCalibrationRejectsGarbage(t *testing.T) {
	if _, err := LoadCalibration(bytes.NewBufferString("junk")); err == nil {
		t.Error("garbage should fail")
	}
}
