// Package cluster simulates a storage-disaggregated cloud database of the
// kind the paper targets (Figure 4): stateless compute nodes over shared
// storage, where scaling out means launching a node that rebuilds its
// in-memory components from checkpoints — a warm-up of seconds (Figure 5),
// negligible against 10-minute scaling intervals.
//
// The simulator runs in virtual time. It exists so auto-scaling strategies
// can be exercised end-to-end: allocations are applied step by step, warm-up
// delays reduce effective capacity, and per-step utilization against the
// scaling threshold is recorded.
package cluster

import (
	"errors"
	"fmt"
	"time"

	"robustscale/internal/chaos"
	"robustscale/internal/obs"
	"robustscale/internal/timeseries"
)

// ErrNegativeTarget is returned by ScaleTo for a negative node target —
// always a caller bug (an unclamped delta or a sign error), never a
// condition to hold through, so it is typed for errors.Is checks.
var ErrNegativeTarget = errors.New("cluster: negative scale target")

// Fleet-level counters on the process-wide registry; every simulated
// cluster feeds them, mirroring what a real control plane would emit.
var (
	obsScaleOuts = obs.Default.Counter(
		"robustscale_cluster_scale_outs_total",
		"Compute nodes launched by scale-out operations.")
	obsScaleIns = obs.Default.Counter(
		"robustscale_cluster_scale_ins_total",
		"Compute nodes retired by scale-in operations.")
	obsFailures = obs.Default.Counter(
		"robustscale_cluster_node_failures_total",
		"Compute nodes lost to injected failures.")
)

// Config describes the simulated database deployment.
type Config struct {
	// CheckpointMB is the size of the in-memory state a new compute node
	// loads from shared storage when it joins.
	CheckpointMB float64
	// LoadBandwidthMBps is the per-node storage read bandwidth during
	// warm-up.
	LoadBandwidthMBps float64
	// BaseWarmup is the fixed startup overhead (container launch, catalog
	// registration) independent of checkpoint size.
	BaseWarmup time.Duration
	// MaxNodes caps the cluster size; 0 means unlimited.
	MaxNodes int
}

// DefaultConfig models the deployment behind Figure 5: a few GB of
// in-memory components loaded at high bandwidth, for warm-ups of a few
// seconds.
func DefaultConfig() Config {
	return Config{
		CheckpointMB:      2048,
		LoadBandwidthMBps: 1024,
		BaseWarmup:        2 * time.Second,
	}
}

// Node is one compute node of the simulated database.
type Node struct {
	// ID is a stable identifier.
	ID int
	// AddedAt is the virtual time the node was launched.
	AddedAt time.Time
	// ReadyAt is when its in-memory components finish loading.
	ReadyAt time.Time
}

// Ready reports whether the node serves traffic at time now.
func (n *Node) Ready(now time.Time) bool { return !now.Before(n.ReadyAt) }

// Cluster is the simulated compute fleet in virtual time.
type Cluster struct {
	cfg    Config
	now    time.Time
	nodes  []*Node
	nextID int

	// ScaleOuts and ScaleIns count scaling operations for thrashing
	// analysis; Failures counts nodes lost to injected failures.
	ScaleOuts, ScaleIns, Failures int
}

// New creates a cluster with the given initial size at virtual time start.
// Initial nodes are born ready.
func New(cfg Config, start time.Time, initial int) (*Cluster, error) {
	if cfg.CheckpointMB < 0 || cfg.LoadBandwidthMBps <= 0 {
		return nil, fmt.Errorf("cluster: invalid checkpoint %vMB / bandwidth %vMBps", cfg.CheckpointMB, cfg.LoadBandwidthMBps)
	}
	if initial < 1 {
		initial = 1
	}
	c := &Cluster{cfg: cfg, now: start}
	for i := 0; i < initial; i++ {
		c.nodes = append(c.nodes, &Node{ID: c.nextID, AddedAt: start, ReadyAt: start})
		c.nextID++
	}
	return c, nil
}

// Now returns the current virtual time.
func (c *Cluster) Now() time.Time { return c.now }

// Size returns the number of provisioned nodes, ready or warming.
func (c *Cluster) Size() int { return len(c.nodes) }

// ReadyCount returns the number of nodes currently serving.
func (c *Cluster) ReadyCount() int {
	ready := 0
	for _, n := range c.nodes {
		if n.Ready(c.now) {
			ready++
		}
	}
	return ready
}

// WarmupDuration returns how long a new node takes to become ready:
// checkpoint load time plus the fixed base overhead. This is the quantity
// Figure 5 plots against checkpoint size.
func (c *Cluster) WarmupDuration() time.Duration {
	load := time.Duration(c.cfg.CheckpointMB / c.cfg.LoadBandwidthMBps * float64(time.Second))
	return c.cfg.BaseWarmup + load
}

// ScaleTo adjusts the cluster to n nodes at the current virtual time. New
// nodes begin warming immediately; removed nodes leave at once (compute is
// stateless — their state lives in shared storage). The paper's premise is
// that this is the cheap operation disaggregation buys.
func (c *Cluster) ScaleTo(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: %d nodes", ErrNegativeTarget, n)
	}
	if n < 1 {
		return fmt.Errorf("cluster: cannot scale to %d nodes", n)
	}
	if c.cfg.MaxNodes > 0 && n > c.cfg.MaxNodes {
		return fmt.Errorf("cluster: %d nodes exceeds cap %d", n, c.cfg.MaxNodes)
	}
	for len(c.nodes) < n {
		c.nodes = append(c.nodes, &Node{
			ID:      c.nextID,
			AddedAt: c.now,
			ReadyAt: c.now.Add(c.WarmupDuration()),
		})
		c.nextID++
		c.ScaleOuts++
		obsScaleOuts.Inc()
	}
	if len(c.nodes) > n {
		// Retire the newest nodes first; they are the least warmed.
		c.ScaleIns += len(c.nodes) - n
		obsScaleIns.Add(float64(len(c.nodes) - n))
		c.nodes = c.nodes[:n]
	}
	return nil
}

// Advance moves virtual time forward.
func (c *Cluster) Advance(d time.Duration) {
	c.now = c.now.Add(d)
}

// Kill abruptly removes up to count nodes (oldest first), modeling node
// failures. Unlike a scale-in, the control plane did not ask for this:
// the next ScaleTo call will launch replacements, which must warm up.
// It returns how many nodes were actually killed (at least one node
// always survives, as a real placement group would enforce).
func (c *Cluster) Kill(count int) int {
	killed := 0
	for killed < count && len(c.nodes) > 1 {
		c.nodes = c.nodes[1:]
		killed++
	}
	c.Failures += killed
	obsFailures.Add(float64(killed))
	return killed
}

// EffectiveCapacity returns the average number of serving nodes over the
// interval [now, now+d): warming nodes contribute the fraction of the
// interval during which they are ready.
func (c *Cluster) EffectiveCapacity(d time.Duration) float64 {
	if d <= 0 {
		return float64(c.ReadyCount())
	}
	total := 0.0
	end := c.now.Add(d)
	for _, n := range c.nodes {
		switch {
		case !n.ReadyAt.After(c.now):
			total += 1
		case n.ReadyAt.Before(end):
			total += float64(end.Sub(n.ReadyAt)) / float64(d)
		}
	}
	return total
}

// StepStat records one simulation step.
type StepStat struct {
	Time      time.Time
	Workload  float64
	Allocated int
	// Capacity is the effective (warm-up-adjusted) node capacity.
	Capacity float64
	// Utilization is workload divided by capacity.
	Utilization float64
	// Violated reports whether utilization exceeded the threshold.
	Violated bool
}

// ReplayReport summarizes a Replay run.
type ReplayReport struct {
	Steps     []StepStat
	Violation int
	// ViolationRate is the fraction of steps whose threshold was
	// breached once warm-up is accounted for.
	ViolationRate float64
	ScaleOuts     int
	ScaleIns      int
	Failures      int
	// Holds counts steps whose scale action failed under an injected
	// control-plane fault, leaving the previous fleet size in place.
	Holds int
}

// Replay drives the cluster with per-step allocations against the realized
// workload, judging utilization against theta. It is the end-to-end check
// that a plan that looks good on paper also works once warm-up is modeled.
// Node-failure injection goes through ReplayWithSchedule with a
// chaos.Schedule (chaos.FromFaultConfig reproduces the legacy seeded
// node-kill stream).
func (c *Cluster) Replay(workload *timeseries.Series, allocations []int, theta float64) (*ReplayReport, error) {
	return c.ReplayWithSchedule(workload, allocations, theta, nil)
}

// ReplayWithSchedule is Replay under a chaos schedule: before each step's
// scaling action, scheduled node kills strike; the scale action itself
// runs through the schedule's control-plane faults (rejections, partial
// fulfilment, timeouts), and a step whose action fails holds the previous
// fleet size — the safe degraded behavior — rather than aborting the
// replay. It measures how much headroom a scaling policy leaves for
// infrastructure faults. A nil or empty schedule is a plain Replay.
func (c *Cluster) ReplayWithSchedule(workload *timeseries.Series, allocations []int, theta float64, sched *chaos.Schedule) (*ReplayReport, error) {
	if workload.Len() != len(allocations) {
		return nil, fmt.Errorf("cluster: %d workload steps vs %d allocations", workload.Len(), len(allocations))
	}
	if theta <= 0 {
		return nil, fmt.Errorf("cluster: non-positive threshold %v", theta)
	}
	cur := &chaos.Cursor{}
	apply := chaos.WrapApply(c.ScaleTo, c.Size, sched, cur)
	report := &ReplayReport{Steps: make([]StepStat, workload.Len())}
	for i := 0; i < workload.Len(); i++ {
		cur.Set(i)
		if kills := sched.KillsAt(i); kills > 0 {
			chaos.CountInjected(chaos.NodeKill)
			if killed := c.Kill(kills); killed > 0 {
				obs.DefaultJournal.RecordAt(c.now, "fault",
					fmt.Sprintf("failure event killed %d node(s)", killed),
					map[string]float64{"killed": float64(killed), "nodes": float64(len(c.nodes))})
			}
		}
		if err := apply(allocations[i]); err != nil {
			if !sched.ApplyFaultAt(i) {
				return nil, fmt.Errorf("cluster: step %d: %w", i, err)
			}
			report.Holds++
			obs.DefaultJournal.RecordAt(c.now, "fault",
				fmt.Sprintf("scale to %d held at %d: %v", allocations[i], c.Size(), err),
				map[string]float64{"target": float64(allocations[i]), "nodes": float64(c.Size())})
		}
		capacity := c.EffectiveCapacity(workload.Step)
		if capacity < 1e-9 {
			capacity = 1e-9
		}
		w := workload.At(i)
		util := w / capacity
		stat := StepStat{
			Time:        c.now,
			Workload:    w,
			Allocated:   allocations[i],
			Capacity:    capacity,
			Utilization: util,
			Violated:    util > theta,
		}
		if stat.Violated {
			report.Violation++
		}
		report.Steps[i] = stat
		c.Advance(workload.Step)
	}
	report.ViolationRate = float64(report.Violation) / float64(len(report.Steps))
	report.ScaleOuts = c.ScaleOuts
	report.ScaleIns = c.ScaleIns
	report.Failures = c.Failures
	return report, nil
}
