package cluster

import (
	"math"
	"testing"
	"time"

	"robustscale/internal/timeseries"
)

var t0 = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

func mustNew(t *testing.T, cfg Config, initial int) *Cluster {
	t.Helper()
	c, err := New(cfg, t0, initial)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterDefaults(t *testing.T) {
	c := mustNew(t, DefaultConfig(), 3)
	if c.Size() != 3 || c.ReadyCount() != 3 {
		t.Errorf("size=%d ready=%d", c.Size(), c.ReadyCount())
	}
	// Zero or negative initial coerces to 1.
	c2 := mustNew(t, DefaultConfig(), 0)
	if c2.Size() != 1 {
		t.Errorf("size = %d", c2.Size())
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := New(Config{CheckpointMB: -1, LoadBandwidthMBps: 1}, t0, 1); err == nil {
		t.Error("negative checkpoint should fail")
	}
	if _, err := New(Config{CheckpointMB: 1, LoadBandwidthMBps: 0}, t0, 1); err == nil {
		t.Error("zero bandwidth should fail")
	}
}

func TestWarmupDurationScalesWithCheckpoint(t *testing.T) {
	cfg := Config{CheckpointMB: 1024, LoadBandwidthMBps: 512, BaseWarmup: 2 * time.Second}
	c := mustNew(t, cfg, 1)
	// 1024/512 = 2s load + 2s base = 4s.
	if got := c.WarmupDuration(); got != 4*time.Second {
		t.Errorf("warmup = %v", got)
	}
	// Figure 5 shape: warm-up grows linearly with checkpoint size and
	// stays in the seconds range for realistic sizes.
	prev := time.Duration(0)
	for _, mb := range []float64{512, 1024, 2048, 4096, 8192} {
		cfg.CheckpointMB = mb
		ci := mustNew(t, cfg, 1)
		w := ci.WarmupDuration()
		if w <= prev {
			t.Errorf("warmup not increasing at %vMB", mb)
		}
		if w > time.Minute {
			t.Errorf("warmup %v implausibly large", w)
		}
		prev = w
	}
}

func TestScaleOutWarmsUp(t *testing.T) {
	cfg := Config{CheckpointMB: 1024, LoadBandwidthMBps: 256, BaseWarmup: time.Second} // 5s warmup
	c := mustNew(t, cfg, 1)
	if err := c.ScaleTo(3); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 3 {
		t.Errorf("size = %d", c.Size())
	}
	if c.ReadyCount() != 1 {
		t.Errorf("ready = %d, new nodes should be warming", c.ReadyCount())
	}
	c.Advance(10 * time.Second)
	if c.ReadyCount() != 3 {
		t.Errorf("ready = %d after warmup", c.ReadyCount())
	}
	if c.ScaleOuts != 2 {
		t.Errorf("scaleOuts = %d", c.ScaleOuts)
	}
}

func TestScaleInImmediate(t *testing.T) {
	c := mustNew(t, DefaultConfig(), 5)
	if err := c.ScaleTo(2); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 2 || c.ReadyCount() != 2 {
		t.Errorf("size=%d ready=%d", c.Size(), c.ReadyCount())
	}
	if c.ScaleIns != 3 {
		t.Errorf("scaleIns = %d", c.ScaleIns)
	}
}

func TestScaleToValidation(t *testing.T) {
	c := mustNew(t, DefaultConfig(), 1)
	if err := c.ScaleTo(0); err == nil {
		t.Error("scale to 0 should fail")
	}
	cfg := DefaultConfig()
	cfg.MaxNodes = 4
	capped := mustNew(t, cfg, 1)
	if err := capped.ScaleTo(5); err == nil {
		t.Error("exceeding cap should fail")
	}
	if err := capped.ScaleTo(4); err != nil {
		t.Errorf("at-cap scale failed: %v", err)
	}
}

func TestEffectiveCapacityProRatesWarmup(t *testing.T) {
	// Warmup = 5 minutes against a 10-minute step: the new node serves
	// half the interval.
	cfg := Config{CheckpointMB: 300 * 1024, LoadBandwidthMBps: 1024, BaseWarmup: 0} // 300s
	c := mustNew(t, cfg, 1)
	if err := c.ScaleTo(2); err != nil {
		t.Fatal(err)
	}
	capacity := c.EffectiveCapacity(10 * time.Minute)
	if math.Abs(capacity-1.5) > 1e-9 {
		t.Errorf("capacity = %v, want 1.5", capacity)
	}
	// Zero interval falls back to the ready count.
	if got := c.EffectiveCapacity(0); got != 1 {
		t.Errorf("instant capacity = %v", got)
	}
}

func TestReplayPerfectAllocations(t *testing.T) {
	s := timeseries.New("w", t0, timeseries.DefaultStep, []float64{8, 18, 28, 18})
	c := mustNew(t, DefaultConfig(), 1)
	report, err := c.Replay(s, []int{1, 2, 3, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up of seconds is negligible against 10-minute steps, so no
	// violations (the paper's core premise for ignoring scaling
	// overhead).
	if report.Violation != 0 {
		t.Errorf("violations = %d: %+v", report.Violation, report.Steps)
	}
	if report.ScaleOuts != 2 || report.ScaleIns != 1 {
		t.Errorf("scaleOuts=%d scaleIns=%d", report.ScaleOuts, report.ScaleIns)
	}
	if len(report.Steps) != 4 {
		t.Errorf("steps = %d", len(report.Steps))
	}
}

func TestReplayUnderProvisionDetected(t *testing.T) {
	s := timeseries.New("w", t0, timeseries.DefaultStep, []float64{50, 50})
	c := mustNew(t, DefaultConfig(), 1)
	report, err := c.Replay(s, []int{2, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 50 / 2 nodes = 25 > 10: both steps violated.
	if report.Violation != 2 {
		t.Errorf("violations = %d", report.Violation)
	}
	if report.ViolationRate != 1 {
		t.Errorf("rate = %v", report.ViolationRate)
	}
}

func TestReplaySlowWarmupHurts(t *testing.T) {
	// A deliberately slow warm-up (half the step) makes an abrupt
	// scale-out insufficient for its first interval.
	cfg := Config{CheckpointMB: 300 * 1024, LoadBandwidthMBps: 1024, BaseWarmup: 0} // 300s = half step
	s := timeseries.New("w", t0, timeseries.DefaultStep, []float64{10, 40})
	c := mustNew(t, cfg, 1)
	report, err := c.Replay(s, []int{1, 4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Step 1: 3 new nodes contribute only half the interval: capacity
	// 1 + 3*0.5 = 2.5, utilization 16 > 10.
	if !report.Steps[1].Violated {
		t.Errorf("slow warmup should violate: %+v", report.Steps[1])
	}
}

func TestReplayValidation(t *testing.T) {
	s := timeseries.New("w", t0, timeseries.DefaultStep, []float64{1, 2})
	c := mustNew(t, DefaultConfig(), 1)
	if _, err := c.Replay(s, []int{1}, 10); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := c.Replay(s, []int{1, 1}, 0); err == nil {
		t.Error("zero theta should fail")
	}
	if _, err := c.Replay(s, []int{1, 0}, 10); err == nil {
		t.Error("zero allocation should fail")
	}
}

func TestReplayAdvancesVirtualTime(t *testing.T) {
	s := timeseries.New("w", t0, timeseries.DefaultStep, []float64{1, 1, 1})
	c := mustNew(t, DefaultConfig(), 1)
	if _, err := c.Replay(s, []int{1, 1, 1}, 10); err != nil {
		t.Fatal(err)
	}
	want := t0.Add(3 * timeseries.DefaultStep)
	if !c.Now().Equal(want) {
		t.Errorf("now = %v, want %v", c.Now(), want)
	}
}
