package cluster

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func testServerlessConfig() ServerlessConfig {
	return ServerlessConfig{
		WakeSeconds: 30,
		StepSeconds: 600,
		WakeCost:    2,
	}
}

func mustServerless(t *testing.T, cfg ServerlessConfig) *Serverless {
	t.Helper()
	s, err := NewServerless(cfg)
	if err != nil {
		t.Fatalf("NewServerless: %v", err)
	}
	return s
}

func TestServerlessParkAndWake(t *testing.T) {
	s := mustServerless(t, testServerlessConfig())
	if !s.Parked() {
		t.Fatal("plant must start parked")
	}

	// Idle demand keeps it parked without counting a park transition.
	out := s.Step(0, WakeFault{})
	if !out.Parked || s.Parks() != 0 {
		t.Fatalf("idle step while parked: %+v, parks=%d", out, s.Parks())
	}

	// Demand arrives: fault-free wake completes within the first step
	// (30s against a 600s step), serving 1 - 30/600 of the step.
	out = s.Step(3, WakeFault{})
	if !out.WakeStarted || !out.WakeCompleted {
		t.Fatalf("fault-free wake did not start+complete in one step: %+v", out)
	}
	if out.WakeLatencySeconds != 30 {
		t.Errorf("wake latency = %v, want 30", out.WakeLatencySeconds)
	}
	// Demand 3 on the default ladder: 1 large (cap 4, cost 5) beats
	// 2 medium (cost 6) and 3 small (cost 6).
	if out.Nodes != 1 || out.Size != 2 {
		t.Errorf("sized wake = %d x size %d, want 1 x size 2", out.Nodes, out.Size)
	}
	wantCap := 4 * (1 - 30.0/600.0)
	if math.Abs(out.CapacityUnits-wantCap) > 1e-12 {
		t.Errorf("capacity = %v, want %v", out.CapacityUnits, wantCap)
	}
	if out.CostUnits != 5+2 {
		t.Errorf("wake-step cost = %v, want node cost 5 + wake cost 2", out.CostUnits)
	}

	// Steady state: full capacity, no wake penalty.
	out = s.Step(3, WakeFault{})
	if out.CapacityUnits != 4 || out.CostUnits != 5 {
		t.Errorf("steady step: capacity %v cost %v, want 4 and 5", out.CapacityUnits, out.CostUnits)
	}

	// Demand vanishes: park.
	out = s.Step(0, WakeFault{})
	if !out.Parked || !s.Parked() || s.Parks() != 1 {
		t.Fatalf("park transition: %+v, parks=%d", out, s.Parks())
	}
	if s.Wakes() != 1 {
		t.Errorf("wakes = %d, want 1", s.Wakes())
	}
}

func TestServerlessWakeFailRetries(t *testing.T) {
	s := mustServerless(t, testServerlessConfig())

	out := s.Step(2, WakeFault{Fail: true})
	if !out.WakeStarted || !out.WakeFailed || out.WakeCompleted {
		t.Fatalf("failed wake step: %+v", out)
	}
	if out.CapacityUnits != 0 {
		t.Errorf("failed wake served capacity %v", out.CapacityUnits)
	}
	if s.Parked() {
		t.Fatal("a failing wake is still in flight, not parked")
	}

	// Retry succeeds next step; the lost step counts toward latency.
	out = s.Step(2, WakeFault{})
	if !out.WakeCompleted || out.WakeStarted {
		t.Fatalf("retry step: %+v", out)
	}
	if out.WakeLatencySeconds != 600+30 {
		t.Errorf("latency after one failed attempt = %v, want 630", out.WakeLatencySeconds)
	}
	if s.WakeFails() != 1 || s.Wakes() != 1 {
		t.Errorf("fails=%d wakes=%d, want 1 and 1", s.WakeFails(), s.Wakes())
	}
}

func TestServerlessWakeStall(t *testing.T) {
	s := mustServerless(t, testServerlessConfig())

	// A 900s stall pushes the 30s wake past the 600s step boundary.
	out := s.Step(2, WakeFault{StallSeconds: 900})
	if !out.Stalled || out.WakeCompleted || out.CapacityUnits != 0 {
		t.Fatalf("stalled step: %+v", out)
	}
	out = s.Step(2, WakeFault{})
	if !out.WakeCompleted {
		t.Fatalf("post-stall step: %+v", out)
	}
	// 600s burned + (930-600)=330s remaining resolved this step.
	if out.WakeLatencySeconds != 930 {
		t.Errorf("stalled wake latency = %v, want 930", out.WakeLatencySeconds)
	}
	wantCap := 2 * (1 - 330.0/600.0) // demand 2 -> 1 medium node (cap 2)
	if math.Abs(out.CapacityUnits-wantCap) > 1e-12 {
		t.Errorf("post-stall capacity = %v, want %v", out.CapacityUnits, wantCap)
	}
}

func TestServerlessPartialProvision(t *testing.T) {
	s := mustServerless(t, testServerlessConfig())

	// Demand 8 wants 2 large nodes; partial provisioning grants 1.
	out := s.Step(8, WakeFault{Partial: true})
	if !out.WakeCompleted || !out.PartialApplied {
		t.Fatalf("partial wake: %+v", out)
	}
	if out.Nodes != 1 || out.Size != 2 {
		t.Errorf("partial wake granted %d x size %d, want 1 x size 2", out.Nodes, out.Size)
	}

	// Next fault-free step completes the fleet.
	out = s.Step(8, WakeFault{})
	if out.Nodes != 2 || out.PartialApplied {
		t.Fatalf("recovery step: %+v", out)
	}

	// Partial on an active scale-up halves the increment target too.
	out = s.Step(20, WakeFault{Partial: true}) // wants 5 large
	if !out.PartialApplied || out.Nodes != 3 {
		t.Fatalf("partial scale-up: %+v, want 3 nodes", out)
	}
	// Scale-down is never partially applied: releasing is reliable.
	out = s.Step(4, WakeFault{Partial: true})
	if out.PartialApplied || out.Nodes != 1 {
		t.Fatalf("scale-down with partial flag: %+v", out)
	}
	if s.Partials() != 2 {
		t.Errorf("partials = %d, want 2", s.Partials())
	}
}

func TestServerlessParkAbortsWake(t *testing.T) {
	s := mustServerless(t, testServerlessConfig())
	s.Step(2, WakeFault{StallSeconds: 3000}) // wake pinned in flight
	if !s.Waking() {
		t.Fatal("wake should be in flight")
	}
	out := s.Step(0, WakeFault{})
	if !out.Parked || !s.Parked() {
		t.Fatalf("park during wake: %+v", out)
	}
	if s.Parks() != 1 {
		t.Errorf("aborted wake should count one park, got %d", s.Parks())
	}
}

// TestServerlessSaveLoadMidWake pins the kill-restart contract: a plant
// snapshotted mid-wake and restored into a fresh instance replays the
// remaining steps bit-identically with the original.
func TestServerlessSaveLoadMidWake(t *testing.T) {
	cfg := testServerlessConfig()
	a := mustServerless(t, cfg)

	script := []struct {
		demand int
		fault  WakeFault
	}{
		{3, WakeFault{}}, {3, WakeFault{}}, {0, WakeFault{}},
		{5, WakeFault{StallSeconds: 900}}, // wake left in flight here
	}
	for _, st := range script {
		a.Step(st.demand, st.fault)
	}
	if !a.Waking() {
		t.Fatal("scenario should leave a wake in flight")
	}

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	b := mustServerless(t, cfg)
	if err := b.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Load: %v", err)
	}

	rest := []struct {
		demand int
		fault  WakeFault
	}{
		{5, WakeFault{Fail: true}}, {5, WakeFault{}}, {5, WakeFault{Partial: true}},
		{0, WakeFault{}}, {1, WakeFault{}},
	}
	for i, st := range rest {
		oa := a.Step(st.demand, st.fault)
		ob := b.Step(st.demand, st.fault)
		if oa != ob {
			t.Fatalf("step %d diverged after restore:\n  orig    %+v\n  restored %+v", i, oa, ob)
		}
	}
	if a.Wakes() != b.Wakes() || a.WakeFails() != b.WakeFails() || a.Parks() != b.Parks() || a.Partials() != b.Partials() {
		t.Error("lifetime counters diverged after restore")
	}
}

func TestServerlessLoadRejectsCorruptSnapshot(t *testing.T) {
	cfg := testServerlessConfig()
	var buf bytes.Buffer
	a := mustServerless(t, cfg)
	a.size = 7 // out of ladder range
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := mustServerless(t, cfg)
	if err := b.Load(&buf); err == nil {
		t.Fatal("Load accepted an out-of-range size index")
	}
}

func TestServerlessConfigValidation(t *testing.T) {
	bad := []ServerlessConfig{
		{WakeSeconds: -1, StepSeconds: 600},
		{WakeSeconds: 30, StepSeconds: 0},
		{WakeSeconds: 30, StepSeconds: 600, WakeCost: -5},
	}
	for i, cfg := range bad {
		if _, err := NewServerless(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestScaleToRejectsNegativeTarget is the regression test for the typed
// negative-target error: callers can distinguish the caller-bug case from
// ordinary capacity limits with errors.Is.
func TestScaleToRejectsNegativeTarget(t *testing.T) {
	c, err := New(DefaultConfig(), t0, 2)
	if err != nil {
		t.Fatal(err)
	}
	err = c.ScaleTo(-3)
	if err == nil {
		t.Fatal("ScaleTo(-3) succeeded")
	}
	if !errors.Is(err, ErrNegativeTarget) {
		t.Errorf("ScaleTo(-3) error %v is not ErrNegativeTarget", err)
	}
	// Zero is invalid for the always-on cluster but is not the negative
	// caller-bug class.
	if err := c.ScaleTo(0); errors.Is(err, ErrNegativeTarget) {
		t.Errorf("ScaleTo(0) wrongly classified as negative target: %v", err)
	}
	if c.Size() != 2 {
		t.Errorf("failed ScaleTo mutated the cluster to %d nodes", c.Size())
	}
}

// TestCalibrationAllZeroSeries pins the parked-interval contract: a tenant
// scaled to zero feeds actual=0 with all-zero quantile rows for the whole
// idle stretch. That must not produce NaN wQL, must count 0 >= 0 as
// covered, and must not trip health degradation.
func TestCalibrationAllZeroSeries(t *testing.T) {
	cal, err := NewCalibration([]float64{0.5, 0.9}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := cal.Observe(0, []float64{0, 0}); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	snap := cal.Snapshot()
	if math.IsNaN(snap.WQL) || math.IsInf(snap.WQL, 0) {
		t.Fatalf("all-zero window produced wQL %v", snap.WQL)
	}
	if snap.WQL != 0 {
		t.Errorf("all-zero window wQL = %v, want 0", snap.WQL)
	}
	for i, cov := range snap.Coverage {
		if cov != 1 {
			t.Errorf("level %v coverage = %v, want 1 (0 >= 0 is covered)", snap.Levels[i], cov)
		}
	}
	if snap.Skipped != 0 {
		t.Errorf("zero observations wrongly skipped: %d", snap.Skipped)
	}

	// No spurious degradation while parked.
	healthy, reason := cal.HealthCheck(0.1, 0.5, 8)()
	if !healthy {
		t.Errorf("HealthCheck degraded on an all-zero parked interval: %s", reason)
	}
	// The shrinker may engage (coverage is perfect) but must return a
	// sane positive budget.
	if got := cal.SampleShrinker(0.02, 8, 0.25)(100); got < 2 || got > 100 {
		t.Errorf("SampleShrinker on all-zero window returned %d", got)
	}
}
