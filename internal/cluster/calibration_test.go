package cluster

import (
	"math"
	"testing"
)

func TestCalibrationValidation(t *testing.T) {
	if _, err := NewCalibration(nil, 10); err == nil {
		t.Error("empty levels accepted")
	}
	if _, err := NewCalibration([]float64{0.5}, 0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewCalibration([]float64{1.5}, 10); err == nil {
		t.Error("level outside (0,1) accepted")
	}
	c, err := NewCalibration([]float64{0.5, 0.9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(1, []float64{1}); err == nil {
		t.Error("mismatched quantile row accepted")
	}
}

func TestCalibrationCoverage(t *testing.T) {
	c, err := NewCalibration([]float64{0.5, 0.9}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Four steps: the 0.9 forecast covers all four actuals, the 0.5
	// forecast covers two of four.
	steps := []struct {
		actual float64
		row    []float64 // q0.5, q0.9
	}{
		{10, []float64{12, 20}}, // both cover
		{10, []float64{8, 15}},  // only 0.9 covers
		{10, []float64{10, 11}}, // both cover (boundary inclusive)
		{10, []float64{9, 12}},  // only 0.9 covers
	}
	for _, s := range steps {
		if err := c.Observe(s.actual, s.row); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Snapshot()
	if snap.Steps != 4 {
		t.Fatalf("steps = %d, want 4", snap.Steps)
	}
	if got := snap.Coverage[0]; got != 0.5 {
		t.Errorf("coverage(0.5) = %v, want 0.5", got)
	}
	if got := snap.Coverage[1]; got != 1 {
		t.Errorf("coverage(0.9) = %v, want 1", got)
	}
}

// TestCalibrationRollingEviction pins the incremental ring bookkeeping
// against a from-scratch recomputation over the retained window.
func TestCalibrationRollingEviction(t *testing.T) {
	levels := []float64{0.5, 0.9}
	const window = 8
	c, err := NewCalibration(levels, window)
	if err != nil {
		t.Fatal(err)
	}
	var actuals []float64
	var rows [][]float64
	for i := 0; i < 25; i++ {
		actual := 100 + 13*math.Sin(float64(i))
		row := []float64{actual + float64(i%7) - 3, actual + 5}
		actuals = append(actuals, actual)
		rows = append(rows, row)
		if err := c.Observe(actual, row); err != nil {
			t.Fatal(err)
		}
	}

	// Recompute over the last `window` observations from scratch.
	tail := actuals[len(actuals)-window:]
	tailRows := rows[len(rows)-window:]
	wantCov := make([]float64, len(levels))
	wantWQL := 0.0
	actualSum := 0.0
	for _, a := range tail {
		actualSum += a
	}
	for li, tau := range levels {
		covered, ql := 0, 0.0
		for i, a := range tail {
			if tailRows[i][li] >= a {
				covered++
			}
			ql += pinballLoss(tau, a, tailRows[i][li])
		}
		wantCov[li] = float64(covered) / window
		wantWQL += 2 * ql / actualSum
	}
	wantWQL /= float64(len(levels))

	snap := c.Snapshot()
	if snap.Steps != window {
		t.Fatalf("steps = %d, want %d", snap.Steps, window)
	}
	for li := range levels {
		if math.Abs(snap.Coverage[li]-wantCov[li]) > 1e-12 {
			t.Errorf("coverage[%d] = %v, want %v", li, snap.Coverage[li], wantCov[li])
		}
	}
	if math.Abs(snap.WQL-wantWQL) > 1e-9 {
		t.Errorf("rolling wQL = %v, want %v", snap.WQL, wantWQL)
	}
}
