package cluster

import (
	"fmt"
	"math"
	"strconv"
	"sync"

	"robustscale/internal/obs"
)

// calibrationSkipped counts observations the tracker refused: one NaN
// actual would otherwise poison every rolling sum in the window for a
// full window length.
var calibrationSkipped = obs.Default.Counter(
	"robustscale_forecast_calibration_skipped_total",
	"Calibration observations skipped because the actual or a quantile value was not finite.")

// Calibration grades quantile forecasts against realized workloads online
// over a rolling window, the monitoring loop the paper argues production
// autoscalers need: if the 0.9-quantile band covers far less than 90% of
// realized workloads, the robust strategy's safety margin has silently
// eroded and retraining is due.
//
// Every Observe updates, in O(levels) time:
//
//   - per-level observed coverage (fraction of actuals at or below the
//     level's forecast) exported as robustscale_forecast_coverage{tau=...}
//     alongside the observed-minus-nominal error gauge, and
//   - the rolling mean weighted quantile loss, exported as
//     robustscale_forecast_rolling_wql.
//
// Calibration is safe for concurrent use, though the control loop is its
// only writer in practice.
type Calibration struct {
	levels []float64
	window int

	mu        sync.Mutex
	actuals   []float64   // ring of realized workloads
	preds     [][]float64 // ring of quantile rows, aligned with levels
	next      int
	count     int
	covered   []int     // per level: covered steps currently in window
	pinball   []float64 // per level: pinball-loss sum over window
	actualSum float64
	skipped   uint64 // non-finite observations refused

	coverage []*obs.Gauge
	covError []*obs.Gauge
	wql      *obs.Gauge
	samples  *obs.Gauge
}

// CalibrationSnapshot is a point-in-time view of the rolling window.
type CalibrationSnapshot struct {
	// Levels are the nominal quantile levels.
	Levels []float64
	// Coverage[i] is the observed coverage of Levels[i].
	Coverage []float64
	// WQL is the rolling mean weighted quantile loss.
	WQL float64
	// Steps is how many observations the window currently holds.
	Steps int
	// Skipped is how many observations were refused as non-finite.
	Skipped uint64
}

// NewCalibration builds a tracker for the given quantile levels over a
// rolling window of that many steps, registering its gauges on
// obs.Default.
func NewCalibration(levels []float64, window int) (*Calibration, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("cluster: calibration needs at least one quantile level")
	}
	if window < 1 {
		return nil, fmt.Errorf("cluster: non-positive calibration window %d", window)
	}
	for _, tau := range levels {
		if tau <= 0 || tau >= 1 {
			return nil, fmt.Errorf("cluster: calibration level %v outside (0, 1)", tau)
		}
	}
	c := &Calibration{
		levels:  append([]float64(nil), levels...),
		window:  window,
		actuals: make([]float64, window),
		preds:   make([][]float64, window),
		covered: make([]int, len(levels)),
		pinball: make([]float64, len(levels)),
	}
	for i := range c.preds {
		c.preds[i] = make([]float64, len(levels))
	}
	covVec := obs.Default.GaugeVec(
		"robustscale_forecast_coverage",
		"Observed rolling coverage of each quantile level; calibrated forecasts match the tau label.",
		"tau")
	errVec := obs.Default.GaugeVec(
		"robustscale_forecast_coverage_error",
		"Observed minus nominal rolling coverage, by quantile level.",
		"tau")
	c.coverage = make([]*obs.Gauge, len(levels))
	c.covError = make([]*obs.Gauge, len(levels))
	for i, tau := range levels {
		label := strconv.FormatFloat(tau, 'g', -1, 64)
		c.coverage[i] = covVec.With(label)
		c.covError[i] = errVec.With(label)
	}
	c.wql = obs.Default.Gauge(
		"robustscale_forecast_rolling_wql",
		"Rolling mean weighted quantile loss over the calibration window.")
	c.samples = obs.Default.Gauge(
		"robustscale_forecast_calibration_samples",
		"Steps currently held in the forecast-calibration window.")
	return c, nil
}

// Levels returns the nominal quantile levels, in order.
func (c *Calibration) Levels() []float64 { return append([]float64(nil), c.levels...) }

// Observe feeds one realized workload and the quantile row that was
// forecast for its step (values aligned with the tracker's levels), then
// refreshes the exported gauges. A non-finite actual or quantile value is
// skipped and counted rather than admitted: a single NaN in a rolling sum
// would poison coverage and wQL for a full window length.
func (c *Calibration) Observe(actual float64, quantiles []float64) error {
	if len(quantiles) != len(c.levels) {
		return fmt.Errorf("cluster: %d quantile values for %d calibration levels", len(quantiles), len(c.levels))
	}
	finite := !math.IsNaN(actual) && !math.IsInf(actual, 0)
	for _, q := range quantiles {
		if math.IsNaN(q) || math.IsInf(q, 0) {
			finite = false
			break
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !finite {
		c.skipped++
		calibrationSkipped.Inc()
		return nil
	}

	if c.count == c.window {
		// Evict the oldest observation from the running sums.
		old := c.actuals[c.next]
		oldRow := c.preds[c.next]
		c.actualSum -= old
		for i := range c.levels {
			if oldRow[i] >= old {
				c.covered[i]--
			}
			c.pinball[i] -= pinballLoss(c.levels[i], old, oldRow[i])
		}
	} else {
		c.count++
	}
	c.actuals[c.next] = actual
	copy(c.preds[c.next], quantiles)
	c.actualSum += actual
	for i, tau := range c.levels {
		if quantiles[i] >= actual {
			c.covered[i]++
		}
		c.pinball[i] += pinballLoss(tau, actual, quantiles[i])
	}
	c.next = (c.next + 1) % c.window

	n := float64(c.count)
	for i, tau := range c.levels {
		cov := float64(c.covered[i]) / n
		c.coverage[i].Set(cov)
		c.covError[i].Set(cov - tau)
	}
	c.wql.Set(c.rollingWQL())
	c.samples.Set(n)
	return nil
}

// rollingWQL computes the mean over levels of 2*QL_tau/sum(actuals) for
// the window; callers hold the lock.
func (c *Calibration) rollingWQL() float64 {
	if c.actualSum <= 0 {
		return 0
	}
	total := 0.0
	for i := range c.levels {
		total += 2 * c.pinball[i] / c.actualSum
	}
	return total / float64(len(c.levels))
}

// Snapshot returns the current rolling statistics.
func (c *Calibration) Snapshot() CalibrationSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := CalibrationSnapshot{
		Levels:   append([]float64(nil), c.levels...),
		Coverage: make([]float64, len(c.levels)),
		WQL:      c.rollingWQL(),
		Steps:    c.count,
		Skipped:  c.skipped,
	}
	if c.count > 0 {
		for i := range c.levels {
			snap.Coverage[i] = float64(c.covered[i]) / float64(c.count)
		}
	}
	return snap
}

// HealthCheck returns a hook for scaler.Guard's Health field: it reports
// unhealthy when any level's observed rolling coverage falls more than
// slack below its nominal level, or (when maxWQL > 0) the rolling wQL
// exceeds maxWQL. The verdict withholds judgment — stays healthy — until
// the window holds at least minSteps observations.
func (c *Calibration) HealthCheck(slack, maxWQL float64, minSteps int) func() (bool, string) {
	return func() (bool, string) {
		snap := c.Snapshot()
		if snap.Steps < minSteps {
			return true, ""
		}
		for i, tau := range snap.Levels {
			if snap.Coverage[i] < tau-slack {
				return false, fmt.Sprintf("rolling coverage of q%g is %.3f, below %.3f (nominal - slack)",
					tau, snap.Coverage[i], tau-slack)
			}
		}
		if maxWQL > 0 && snap.WQL > maxWQL {
			return false, fmt.Sprintf("rolling wQL %.4f above limit %.4f", snap.WQL, maxWQL)
		}
		return true, ""
	}
}

// SampleShrinker returns a hook for a Monte-Carlo forecaster's sample
// budget (forecast.DeepAR.SetSampleBudget): while every observed rolling
// coverage sits at least slack above its nominal level — the forecast
// bands are demonstrably conservative — the per-round Monte-Carlo path
// count shrinks to frac of the full budget, trading sampling noise the
// calibration window shows is affordable for planning latency. The hook
// returns the full budget until the window holds minSteps observations
// and whenever any level's coverage margin dips below slack (the nominal
// target is capped at 1 so extreme levels can still qualify).
//
// Shrinking deliberately breaks warm/cold bit-identity — fewer paths is a
// different estimate — so it is opt-in and never engages on the default
// fast path.
func (c *Calibration) SampleShrinker(slack float64, minSteps int, frac float64) func(full int) int {
	if frac <= 0 || frac >= 1 {
		frac = 0.25
	}
	return func(full int) int {
		snap := c.Snapshot()
		if snap.Steps < minSteps {
			return full
		}
		for i, tau := range snap.Levels {
			want := tau + slack
			if want > 1 {
				want = 1
			}
			if snap.Coverage[i] < want {
				return full
			}
		}
		reduced := int(math.Ceil(float64(full) * frac))
		if reduced < 2 {
			reduced = 2
		}
		if reduced > full {
			reduced = full
		}
		return reduced
	}
}

// pinballLoss is the quantile (pinball) loss rho_tau of prediction yhat
// against actual y.
func pinballLoss(tau, y, yhat float64) float64 {
	u := y - yhat
	if u < 0 {
		return (tau - 1) * u
	}
	return tau * u
}
