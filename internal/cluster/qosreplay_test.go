package cluster

import (
	"testing"
	"time"

	"robustscale/internal/optimize"
	"robustscale/internal/qos"
	"robustscale/internal/timeseries"
)

var qosNode = qos.Node{ServiceRate: 100, Workers: 8} // 800 qps per node

func TestReplayQoSMeetsSLOWithCalibratedTheta(t *testing.T) {
	slo := qos.SLO{Percentile: 0.99, Target: 60 * time.Millisecond}
	theta, err := qos.CalibrateTheta(qosNode, slo)
	if err != nil {
		t.Fatal(err)
	}
	// Plan allocations against the calibrated theta: every step should
	// then meet the SLO when replayed.
	workload := timeseries.New("qps", t0, timeseries.DefaultStep,
		[]float64{500, 1500, 3000, 2400, 900})
	plan, err := optimize.Plan(workload.Values, theta)
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, DefaultConfig(), plan[0])
	report, err := c.ReplayQoS(workload, plan, qosNode, slo)
	if err != nil {
		t.Fatal(err)
	}
	if report.SLOViolations != 0 {
		t.Errorf("violations = %d: %+v", report.SLOViolations, report.Steps)
	}
	if report.WorstP99 > slo.Target {
		t.Errorf("worst p99 = %v above target", report.WorstP99)
	}
	if report.MeanUtilzation <= 0 || report.MeanUtilzation >= 1 {
		t.Errorf("mean utilization = %v", report.MeanUtilzation)
	}
}

func TestReplayQoSDetectsOverload(t *testing.T) {
	slo := qos.SLO{Percentile: 0.99, Target: 60 * time.Millisecond}
	// One node for 790 qps is ~99% utilization: latency explodes.
	workload := timeseries.New("qps", t0, timeseries.DefaultStep, []float64{790, 790})
	c := mustNew(t, DefaultConfig(), 1)
	report, err := c.ReplayQoS(workload, []int{1, 1}, qosNode, slo)
	if err != nil {
		t.Fatal(err)
	}
	if report.SLOViolations != 2 {
		t.Errorf("violations = %d", report.SLOViolations)
	}
	if report.ViolationRate != 1 {
		t.Errorf("rate = %v", report.ViolationRate)
	}
}

func TestReplayQoSValidation(t *testing.T) {
	workload := timeseries.New("qps", t0, timeseries.DefaultStep, []float64{1, 2})
	c := mustNew(t, DefaultConfig(), 1)
	slo := qos.SLO{Percentile: 0.99, Target: time.Second}
	if _, err := c.ReplayQoS(workload, []int{1}, qosNode, slo); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := c.ReplayQoS(workload, []int{1, 1}, qos.Node{}, slo); err == nil {
		t.Error("invalid node should fail")
	}
	if _, err := c.ReplayQoS(workload, []int{1, 1}, qosNode, qos.SLO{}); err == nil {
		t.Error("invalid SLO should fail")
	}
}

func TestReplayQoSMeanPercentileBranch(t *testing.T) {
	slo := qos.SLO{Percentile: 0.5, Target: 15 * time.Millisecond}
	workload := timeseries.New("qps", t0, timeseries.DefaultStep, []float64{400})
	c := mustNew(t, DefaultConfig(), 1)
	report, err := c.ReplayQoS(workload, []int{1}, qosNode, slo)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Steps) != 1 {
		t.Fatalf("steps = %d", len(report.Steps))
	}
}
