// Serverless scaling model: idle-tenant scale-to-zero with a second
// vertical dimension (node size, not just count) and a cold-wake latency
// and cost penalty. Unlike the always-on Cluster — whose warm-up is
// seconds against 10-minute steps and therefore nearly free — a parked
// serverless tenant has *zero* capacity, and the dominant risk moves to
// the wake transition: a stalled, failed or partially-provisioned wake
// leaves real demand unserved for whole steps.
//
// Serverless is a deterministic per-step state machine ("the plant"): the
// control plane feeds it the admitted demand in base-node units plus any
// scheduled wake faults, and it answers with the capacity that actually
// materialized, the committed (count, size) decision, and the wake/park
// events the step produced. All state is plain values with gob Save/Load,
// so a kill-restart mid-wake resumes bit-identically.
package cluster

import (
	"encoding/gob"
	"fmt"
	"io"

	"robustscale/internal/optimize"
)

// DefaultNodeSizes is the vertical scaling ladder the serverless model
// optimizes over: bigger nodes are sublinear in cost, so consolidation
// pays at high demand while the idle floor stays cheap.
func DefaultNodeSizes() []optimize.NodeSize {
	return []optimize.NodeSize{
		{Name: "small", Capacity: 1, Cost: 2},
		{Name: "medium", Capacity: 2, Cost: 3},
		{Name: "large", Capacity: 4, Cost: 5},
	}
}

// ServerlessConfig parameterizes the plant.
type ServerlessConfig struct {
	// Sizes is the vertical ladder (DefaultNodeSizes when nil).
	Sizes []optimize.NodeSize
	// WakeSeconds is the fault-free cold-wake latency: checkpoint
	// restore plus proxy re-attach (the Orochi-style <60s budget).
	WakeSeconds float64
	// StepSeconds is the replay step length the plant resolves wakes
	// against.
	StepSeconds float64
	// WakeCost is the one-time cost (in node-step units) charged per
	// completed wake — the provisioning churn scale-to-zero pays for.
	WakeCost float64
}

// Validate reports configuration errors.
func (cfg ServerlessConfig) Validate() error {
	if err := optimize.ValidateSizes(cfg.Sizes); err != nil {
		return err
	}
	if len(cfg.Sizes) > 16 {
		return fmt.Errorf("cluster: node-size ladder of %d rungs exceeds 16", len(cfg.Sizes))
	}
	if cfg.WakeSeconds < 0 {
		return fmt.Errorf("cluster: negative wake latency %v", cfg.WakeSeconds)
	}
	if cfg.StepSeconds <= 0 {
		return fmt.Errorf("cluster: non-positive step length %v", cfg.StepSeconds)
	}
	if cfg.WakeCost < 0 {
		return fmt.Errorf("cluster: negative wake cost %v", cfg.WakeCost)
	}
	return nil
}

// WakeFault is the chaos input of one plant step.
type WakeFault struct {
	// StallSeconds stretches an in-flight wake (WakeStall).
	StallSeconds float64
	// Fail aborts the in-flight wake attempt (WakeFail).
	Fail bool
	// Partial grants only half of a requested wake or scale-up fleet
	// (PartialProvision).
	Partial bool
}

// WakeOutcome is what one plant step actually delivered.
type WakeOutcome struct {
	// Nodes and Size are the committed allocation after the step.
	Nodes, Size int
	// CapacityUnits is the effective capacity in base-node units over
	// the step (fractional on the step a wake completes mid-way).
	CapacityUnits float64
	// CostUnits is the node-step cost incurred, including the wake
	// penalty on completion. Integral by construction with integral
	// size costs.
	CostUnits float64
	// Transition events of this step.
	WakeStarted, WakeCompleted, WakeFailed, Stalled, PartialApplied bool
	// Parked reports zero committed capacity with no wake in flight.
	Parked bool
	// WakeLatencySeconds is the wall (virtual) latency from the first
	// demanded step to serving capacity; set when WakeCompleted.
	WakeLatencySeconds float64
}

// Serverless is the per-tenant plant. Not safe for concurrent use; the
// fleet controller drives each tenant's plant from its own apply phase.
type Serverless struct {
	cfg ServerlessConfig

	nodes int
	size  int
	// Wake-in-flight state: elapsed accumulates the whole wake sequence
	// (including failed attempts) for latency accounting; remain is the
	// seconds left in the current attempt.
	waking      bool
	wakeRemain  float64
	wakeElapsed float64

	// Lifetime counters (exported via accessors, persisted).
	wakes     int64
	wakeFails int64
	parks     int64
	partials  int64
}

// NewServerless builds a plant starting parked at zero.
func NewServerless(cfg ServerlessConfig) (*Serverless, error) {
	if cfg.Sizes == nil {
		cfg.Sizes = DefaultNodeSizes()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Serverless{cfg: cfg}, nil
}

// Parked reports zero capacity with no wake in flight.
func (s *Serverless) Parked() bool { return s.nodes == 0 && !s.waking }

// Waking reports a wake-from-zero in flight.
func (s *Serverless) Waking() bool { return s.waking }

// Nodes returns the committed node count; SizeIndex its ladder rung.
func (s *Serverless) Nodes() int     { return s.nodes }
func (s *Serverless) SizeIndex() int { return s.size }

// Wakes, WakeFails, Parks and Partials are lifetime event counters.
func (s *Serverless) Wakes() int64     { return s.wakes }
func (s *Serverless) WakeFails() int64 { return s.wakeFails }
func (s *Serverless) Parks() int64     { return s.parks }
func (s *Serverless) Partials() int64  { return s.partials }

// Step advances the plant one replay step against the admitted demand
// (base-node units) and the step's scheduled faults, returning what
// actually materialized. Demand <= 0 parks the tenant (and aborts any
// wake in flight — the flash crowd evaporated before capacity arrived).
func (s *Serverless) Step(demandUnits int, f WakeFault) WakeOutcome {
	var out WakeOutcome
	if demandUnits <= 0 {
		if s.nodes > 0 || s.waking {
			s.parks++
		}
		s.nodes, s.size = 0, 0
		s.waking, s.wakeRemain, s.wakeElapsed = false, 0, 0
		out.Parked = true
		return out
	}

	target, err := optimize.SizeDemand(demandUnits, s.cfg.Sizes)
	if err != nil || target.Count < 1 {
		// Unreachable with a validated config; park defensively.
		out.Parked = s.Parked()
		return out
	}

	if s.nodes == 0 {
		// Wake-from-zero: resolve the cold-start latency against the
		// step, under any scheduled stall or failure.
		if !s.waking {
			s.waking = true
			s.wakeElapsed = 0
			s.wakeRemain = s.cfg.WakeSeconds
			s.wakes++
			out.WakeStarted = true
		}
		if f.StallSeconds > 0 {
			s.wakeRemain += f.StallSeconds
			out.Stalled = true
		}
		if f.Fail {
			// The provisioning attempt dies; the whole step is lost and
			// the next demanded step restarts the attempt from scratch.
			s.wakeFails++
			out.WakeFailed = true
			s.wakeElapsed += s.cfg.StepSeconds
			s.wakeRemain = s.cfg.WakeSeconds
			return out
		}
		if s.wakeRemain >= s.cfg.StepSeconds {
			// Still cold for the whole step.
			s.wakeRemain -= s.cfg.StepSeconds
			s.wakeElapsed += s.cfg.StepSeconds
			return out
		}
		// The wake completes within this step: capacity serves the
		// remaining fraction.
		frac := s.wakeRemain / s.cfg.StepSeconds
		s.wakeElapsed += s.wakeRemain
		out.WakeCompleted = true
		out.WakeLatencySeconds = s.wakeElapsed
		s.waking, s.wakeRemain, s.wakeElapsed = false, 0, 0
		s.nodes, s.size = target.Count, target.Size
		if f.Partial && s.nodes > 1 {
			s.nodes = (s.nodes + 1) / 2
			s.partials++
			out.PartialApplied = true
		}
		capUnits := float64(s.nodes) * s.cfg.Sizes[s.size].Capacity
		out.Nodes, out.Size = s.nodes, s.size
		out.CapacityUnits = capUnits * (1 - frac)
		out.CostUnits = float64(s.nodes)*s.cfg.Sizes[s.size].Cost + s.cfg.WakeCost
		return out
	}

	// Active resize: stateless compute re-shapes instantly (the paper's
	// disaggregation premise), but a scale-up can be partially
	// provisioned — half the requested fleet arrives this step and the
	// next fault-free step completes it.
	prevUnits := float64(s.nodes) * s.cfg.Sizes[s.size].Capacity
	s.nodes, s.size = target.Count, target.Size
	if f.Partial {
		newUnits := float64(s.nodes) * s.cfg.Sizes[s.size].Capacity
		if newUnits > prevUnits && s.nodes > 1 {
			s.nodes = (s.nodes + 1) / 2
			s.partials++
			out.PartialApplied = true
		}
	}
	out.Nodes, out.Size = s.nodes, s.size
	out.CapacityUnits = float64(s.nodes) * s.cfg.Sizes[s.size].Capacity
	out.CostUnits = float64(s.nodes) * s.cfg.Sizes[s.size].Cost
	return out
}

// serverlessState is the gob wire form of the plant.
type serverlessState struct {
	Nodes, Size             int
	Waking                  bool
	WakeRemain, WakeElapsed float64
	Wakes, WakeFails        int64
	Parks, Partials         int64
}

// Save snapshots the plant; Load restores it. Configuration is not
// persisted — the owner rebuilds the plant from its (fingerprinted)
// config and restores only the mutable state, the same contract every
// other component's Save/Load follows.
func (s *Serverless) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(serverlessState{
		Nodes: s.nodes, Size: s.size,
		Waking: s.waking, WakeRemain: s.wakeRemain, WakeElapsed: s.wakeElapsed,
		Wakes: s.wakes, WakeFails: s.wakeFails, Parks: s.parks, Partials: s.partials,
	})
}

// Load restores a snapshot written by Save.
func (s *Serverless) Load(r io.Reader) error {
	var st serverlessState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("cluster: loading serverless state: %w", err)
	}
	if st.Nodes < 0 || st.Size < 0 || st.Size >= len(s.cfg.Sizes) || st.WakeRemain < 0 {
		return fmt.Errorf("cluster: serverless snapshot out of range (%d nodes, size %d)", st.Nodes, st.Size)
	}
	s.nodes, s.size = st.Nodes, st.Size
	s.waking, s.wakeRemain, s.wakeElapsed = st.Waking, st.WakeRemain, st.WakeElapsed
	s.wakes, s.wakeFails, s.parks, s.partials = st.Wakes, st.WakeFails, st.Parks, st.Partials
	return nil
}
