// Package parallel is the shared bounded worker pool behind the
// repository's hot paths: Monte-Carlo sampling in DeepAR, data-parallel
// mini-batch training in the neural forecasters, ensemble fan-out, and the
// concurrent experiment runner.
//
// The package enforces one discipline everywhere: parallelism must never
// change results. Callers get it by (a) writing only to per-index slots,
// (b) deriving any randomness from the task index, never from the worker,
// and (c) merging per-worker accumulators in a fixed order after Wait. The
// helpers here only distribute indices; they deliberately carry no state of
// their own that could make scheduling observable.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"robustscale/internal/obs"
)

// Workers normalizes a requested worker count: requested <= 0 means "use
// every available CPU" (runtime.NumCPU, itself capped by GOMAXPROCS at run
// time); the result is clamped to [1, tasks] so callers never spawn idle
// goroutines.
func Workers(requested, tasks int) int {
	w := requested
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines and blocks until all calls return. Indices are handed out
// dynamically (atomic counter), so fn must not care which goroutine runs
// which index. workers is normalized with Workers. With one worker the
// loop runs inline on the caller's goroutine, so the sequential path pays
// nothing for the abstraction.
func ForEach(workers, n int, fn func(i int)) {
	ForEachWorker(workers, n, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach for callers that keep per-worker state (scratch
// arenas, gradient buffers): fn receives the worker id in [0, workers) in
// addition to the task index. Worker ids identify the goroutine, not the
// schedule — any index may run on any worker, so per-worker state must be
// merged order-independently or keyed by index afterwards.
func ForEachWorker(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// ForEachWorkerSpan is ForEachWorker with per-worker trace spans: each
// worker's whole participation in the loop is recorded as one span named
// name on its own trace row (obs.WorkerTID0+worker), so fan-out phases —
// Monte-Carlo sampling, mini-batch gradients, ensemble fits — render as
// parallel lanes in the Chrome trace. Scheduling is identical to
// ForEachWorker (dynamic index hand-out, merge-order discipline applies
// unchanged); with tracing disabled the extra cost is one atomic load
// per worker, not per task.
func ForEachWorkerSpan(name string, workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		sp := obs.DefaultTracer.StartTID(name, obs.WorkerTID0)
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		sp.End()
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			sp := obs.DefaultTracer.StartTID(name, uint64(obs.WorkerTID0+worker))
			defer sp.End()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// FirstError returns the first non-nil error in index order, or nil. It is
// the companion to ForEach for fallible tasks: collect one error per slot,
// then report deterministically.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
