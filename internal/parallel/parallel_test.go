package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"robustscale/internal/obs"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		requested, tasks, want int
	}{
		{0, 100, runtime.NumCPU()},
		{-3, 100, runtime.NumCPU()},
		{4, 100, 4},
		{8, 3, 3},
		{1, 0, 1},
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.tasks); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.tasks, got, c.want)
		}
	}
}

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		counts := make([]int32, n)
		ForEach(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	if ran {
		t.Error("fn ran with zero tasks")
	}
}

func TestForEachWorkerIDsInRange(t *testing.T) {
	const workers, n = 5, 200
	var bad atomic.Int32
	ForEachWorker(workers, n, func(worker, i int) {
		if worker < 0 || worker >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Errorf("%d calls saw an out-of-range worker id", bad.Load())
	}
}

// TestForEachDeterministicSlots is the pattern every caller relies on:
// writes keyed by index produce identical results for any worker count.
func TestForEachDeterministicSlots(t *testing.T) {
	const n = 500
	ref := make([]int, n)
	ForEach(1, n, func(i int) { ref[i] = i * i })
	for _, workers := range []int{2, 3, 16} {
		got := make([]int, n)
		ForEach(workers, n, func(i int) { got[i] = i * i })
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestFirstError(t *testing.T) {
	e1, e2 := errors.New("one"), errors.New("two")
	if err := FirstError([]error{nil, nil}); err != nil {
		t.Errorf("FirstError(nil,nil) = %v", err)
	}
	if err := FirstError([]error{nil, e2, e1}); err != e2 {
		t.Errorf("FirstError = %v, want %v", err, e2)
	}
	if err := FirstError(nil); err != nil {
		t.Errorf("FirstError(empty) = %v", err)
	}
}

// TestForEachWorkerSpanMatchesForEachWorker: the traced variant schedules
// identically — every index covered once, worker ids in range — with
// tracing on and off.
func TestForEachWorkerSpanMatchesForEachWorker(t *testing.T) {
	obs.DefaultTracer.Reset()
	defer obs.DefaultTracer.SetEnabled(false)
	for _, enabled := range []bool{false, true} {
		obs.DefaultTracer.SetEnabled(enabled)
		for _, workers := range []int{1, 2, 7} {
			const n = 300
			var hits [n]atomic.Int32
			var bad atomic.Int32
			ForEachWorkerSpan("test.loop", workers, n, func(worker, i int) {
				hits[i].Add(1)
				if worker < 0 || worker >= workers {
					bad.Add(1)
				}
			})
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("enabled=%v workers=%d: index %d ran %d times", enabled, workers, i, hits[i].Load())
				}
			}
			if bad.Load() != 0 {
				t.Errorf("enabled=%v workers=%d: out-of-range worker ids", enabled, workers)
			}
		}
	}
}

// TestForEachWorkerSpanRecordsPerWorkerLanes: with tracing enabled each
// participating worker contributes one span on its own trace row; with it
// disabled nothing is recorded. Runs under -race in CI, exercising
// concurrent span open/close from the pool's goroutines.
func TestForEachWorkerSpanRecordsPerWorkerLanes(t *testing.T) {
	obs.DefaultTracer.Reset()
	obs.DefaultTracer.SetEnabled(true)
	defer func() {
		obs.DefaultTracer.SetEnabled(false)
		obs.DefaultTracer.Reset()
	}()

	const workers, n = 4, 64
	ForEachWorkerSpan("test.lanes", workers, n, func(worker, i int) {})
	events := obs.DefaultTracer.Events()
	if len(events) != workers {
		t.Fatalf("recorded %d spans, want one per worker (%d)", len(events), workers)
	}
	seen := map[uint64]bool{}
	for _, ev := range events {
		if ev.Name != "test.lanes" {
			t.Errorf("span name = %q", ev.Name)
		}
		if ev.TID < obs.WorkerTID0 || ev.TID >= obs.WorkerTID0+workers {
			t.Errorf("span tid = %d outside worker rows", ev.TID)
		}
		if seen[ev.TID] {
			t.Errorf("two spans on tid %d", ev.TID)
		}
		seen[ev.TID] = true
	}

	obs.DefaultTracer.Reset()
	obs.DefaultTracer.SetEnabled(false)
	ForEachWorkerSpan("test.lanes", workers, n, func(worker, i int) {})
	if obs.DefaultTracer.Len() != 0 {
		t.Errorf("disabled tracer recorded %d spans", obs.DefaultTracer.Len())
	}

	// The single-worker inline path records one span too.
	obs.DefaultTracer.SetEnabled(true)
	obs.DefaultTracer.Reset()
	ForEachWorkerSpan("test.inline", 1, 8, func(worker, i int) {})
	events = obs.DefaultTracer.Events()
	if len(events) != 1 || events[0].TID != obs.WorkerTID0 {
		t.Errorf("inline path events = %+v", events)
	}
}
