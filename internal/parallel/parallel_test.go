package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		requested, tasks, want int
	}{
		{0, 100, runtime.NumCPU()},
		{-3, 100, runtime.NumCPU()},
		{4, 100, 4},
		{8, 3, 3},
		{1, 0, 1},
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.tasks); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.tasks, got, c.want)
		}
	}
}

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		counts := make([]int32, n)
		ForEach(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	if ran {
		t.Error("fn ran with zero tasks")
	}
}

func TestForEachWorkerIDsInRange(t *testing.T) {
	const workers, n = 5, 200
	var bad atomic.Int32
	ForEachWorker(workers, n, func(worker, i int) {
		if worker < 0 || worker >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Errorf("%d calls saw an out-of-range worker id", bad.Load())
	}
}

// TestForEachDeterministicSlots is the pattern every caller relies on:
// writes keyed by index produce identical results for any worker count.
func TestForEachDeterministicSlots(t *testing.T) {
	const n = 500
	ref := make([]int, n)
	ForEach(1, n, func(i int) { ref[i] = i * i })
	for _, workers := range []int{2, 3, 16} {
		got := make([]int, n)
		ForEach(workers, n, func(i int) { got[i] = i * i })
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestFirstError(t *testing.T) {
	e1, e2 := errors.New("one"), errors.New("two")
	if err := FirstError([]error{nil, nil}); err != nil {
		t.Errorf("FirstError(nil,nil) = %v", err)
	}
	if err := FirstError([]error{nil, e2, e1}); err != e2 {
		t.Errorf("FirstError = %v, want %v", err, e2)
	}
	if err := FirstError(nil); err != nil {
		t.Errorf("FirstError(empty) = %v", err)
	}
}
