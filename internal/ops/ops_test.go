package ops

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"robustscale/internal/obs"
)

func TestRegistryUpdateAndSnapshot(t *testing.T) {
	r := NewRegistry("tft-0.9", 100)
	now := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	r.Update(func(s *Status) {
		s.VirtualTime = now
		s.Nodes = 7
		s.Workload = 650
		s.Utilization = 0.93
		s.Steps = 42
		s.Violations = 3
		s.Plan = []int{7, 8, 8}
	})
	snap := r.Snapshot()
	if snap.Strategy != "tft-0.9" || snap.Theta != 100 {
		t.Errorf("static fields lost: %+v", snap)
	}
	if snap.Nodes != 7 || snap.Steps != 42 || len(snap.Plan) != 3 {
		t.Errorf("snapshot = %+v", snap)
	}
	// The snapshot's plan is a copy.
	snap.Plan[0] = 99
	if r.Snapshot().Plan[0] == 99 {
		t.Error("snapshot shares plan storage")
	}
}

func TestHandlerServesJSON(t *testing.T) {
	r := NewRegistry("reactive-max", 50)
	r.Update(func(s *Status) { s.Nodes = 3; s.Violations = 1 })
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var got Status
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Strategy != "reactive-max" || got.Nodes != 3 || got.Violations != 1 {
		t.Errorf("decoded = %+v", got)
	}
}

func TestMetricsHandlerPrometheusFormat(t *testing.T) {
	r := NewRegistry("tft-0.9", 100)
	r.Update(func(s *Status) {
		s.Nodes = 12
		s.Violations = 4
		s.Utilization = 0.87
	})
	srv := httptest.NewServer(r.MetricsHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"robustscale_nodes 12",
		"robustscale_violations_total 4",
		"robustscale_utilization 0.87",
		"robustscale_theta 100",
		"# TYPE robustscale_nodes gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
	// POST rejected.
	post, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", post.StatusCode)
	}
}

func TestHandlerRejectsNonGET(t *testing.T) {
	r := NewRegistry("x", 1)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry("x", 1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Update(func(s *Status) { s.Steps++ })
			}
		}(i)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Steps; got != 800 {
		t.Errorf("steps = %d, want 800", got)
	}
}

// TestMetricsHandlerComposesObsRegistry checks that /metrics serves the
// status gauges followed by every instrument of the obs registry, so one
// endpoint covers the whole daemon.
func TestMetricsHandlerComposesObsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("robustscale_custom_total", "A custom counter.").Add(7)
	reg.HistogramVec("robustscale_stage_duration_seconds",
		"Control-loop stage latency in seconds.", "stage", []float64{0.01, 0.1}).
		With("forecast").Observe(0.05)

	r := NewRegistry("tft-0.9", 100)
	r.Update(func(s *Status) { s.Nodes = 2 })
	srv := httptest.NewServer(r.MetricsHandlerFor(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"robustscale_nodes 2",
		"robustscale_custom_total 7",
		`robustscale_stage_duration_seconds_bucket{stage="forecast",le="0.1"} 1`,
		`robustscale_stage_duration_seconds_count{stage="forecast"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
	// Status gauges come first, obs families after.
	if strings.Index(text, "robustscale_nodes") > strings.Index(text, "robustscale_custom_total") {
		t.Error("status gauges should precede obs registry families")
	}
}

// TestObserveStage checks the daemon-side stage helper feeds the shared
// histogram family on obs.Default.
func TestObserveStage(t *testing.T) {
	before := stageSeconds.With(StageApply).Count()
	ObserveApply(3 * time.Millisecond)
	ObserveStage(StageApply, 2*time.Millisecond)
	if got := stageSeconds.With(StageApply).Count(); got != before+2 {
		t.Errorf("apply-stage observations = %d, want %d", got, before+2)
	}
}
