// Package ops provides the observability surface of the auto-scaler
// daemon: a thread-safe status registry updated by the control loop and
// an HTTP handler exposing it as JSON, so operators can watch a live
// deployment the way they would any production autoscaler.
package ops

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"robustscale/internal/obs"
)

// Control-loop stage names used with ObserveStage. The forecast and
// optimize stages are recorded inside internal/scaler (which registers
// the same histogram family); apply is recorded by the daemon around the
// cluster mutation.
const (
	StageForecast = "forecast"
	StageOptimize = "optimize"
	StageApply    = "apply"
)

// stageSeconds is the shared per-stage latency histogram of the control
// loop, registered on obs.Default under the same family name
// internal/scaler uses — obs registration is idempotent by name, so both
// packages feed one histogram.
var stageSeconds = obs.Default.HistogramVec(
	"robustscale_stage_duration_seconds",
	"Control-loop stage latency in seconds.",
	"stage", obs.LatencyBuckets)

var stageApply = stageSeconds.With(StageApply)

// ObserveStage records one execution of a control-loop stage.
func ObserveStage(stage string, d time.Duration) {
	stageSeconds.With(stage).Observe(d.Seconds())
}

// ObserveApply records one apply-stage execution without a label lookup.
func ObserveApply(d time.Duration) { stageApply.Observe(d.Seconds()) }

// Status is a snapshot of the auto-scaler's state.
type Status struct {
	// Tenant is the tenant id this control loop plans for; a
	// single-tenant daemon reports obs.DefaultTenant. Always present in
	// the JSON so fleet tooling can key on it.
	Tenant string `json:"tenant"`
	// Strategy names the active scaling strategy.
	Strategy string `json:"strategy"`
	// Theta is the per-node workload threshold in effect.
	Theta float64 `json:"theta"`
	// VirtualTime is the simulation clock (wall clock for a live
	// deployment).
	VirtualTime time.Time `json:"virtual_time"`
	// Nodes is the current allocation.
	Nodes int `json:"nodes"`
	// Workload is the most recent observed workload.
	Workload float64 `json:"workload"`
	// Utilization is workload divided by capacity relative to theta.
	Utilization float64 `json:"utilization"`
	// Steps counts control-loop iterations so far.
	Steps int `json:"steps"`
	// Violations counts threshold breaches so far.
	Violations int `json:"violations"`
	// ScaleOuts and ScaleIns count scaling operations.
	ScaleOuts int `json:"scale_outs"`
	ScaleIns  int `json:"scale_ins"`
	// Plan is the remainder of the current scaling plan.
	Plan []int `json:"plan,omitempty"`
	// DegradationMode is the guard's current rung on the degradation
	// ladder ("normal", "repair", "last-known-good", "reactive").
	DegradationMode string `json:"degradation_mode,omitempty"`
	// DegradationReason says why the guard left normal mode.
	DegradationReason string `json:"degradation_reason,omitempty"`
	// DegradedRounds counts planning rounds that engaged any fallback.
	DegradedRounds int `json:"degraded_rounds,omitempty"`
	// ApplyHolds counts rounds that held the current allocation because
	// the apply path was unavailable.
	ApplyHolds int `json:"apply_holds,omitempty"`
	// WarmStart reports whether this process recovered its control-plane
	// state from a checkpoint instead of cold-starting. Always present in
	// the JSON so restart tooling can assert on it directly.
	WarmStart bool `json:"warm_start"`
	// CheckpointWrites counts snapshots this process has written to its
	// state directory (0 when durability is disabled).
	CheckpointWrites int `json:"checkpoint_writes,omitempty"`
	// Parked reports the serverless park verdict: the wake guard has
	// scaled this tenant's plan to zero. A daemon over a physical cluster
	// still holds the one-node floor while parked; the flag (not the node
	// count) is the authoritative zero-state signal.
	Parked bool `json:"parked,omitempty"`
	// KeepWarm reports that the wake breaker is open and the tenant is
	// pinned at the keep-warm floor instead of parking.
	KeepWarm bool `json:"keep_warm,omitempty"`
	// Parks and Wakes count zero-boundary crossings; ParkedSteps counts
	// replay steps spent parked. All zero outside serverless mode.
	Parks       int `json:"parks,omitempty"`
	Wakes       int `json:"wakes,omitempty"`
	ParkedSteps int `json:"parked_steps,omitempty"`
}

// Registry holds the latest status for concurrent readers.
type Registry struct {
	mu     sync.RWMutex
	status Status
}

// NewRegistry returns a registry pre-filled with the static fields and
// the default tenant id (override with Update for fleet members).
func NewRegistry(strategy string, theta float64) *Registry {
	return &Registry{status: Status{Tenant: obs.DefaultTenant, Strategy: strategy, Theta: theta}}
}

// Update replaces the dynamic fields of the status. The provided function
// mutates a copy under the registry lock, so partial updates are easy:
//
//	reg.Update(func(s *Status) { s.Nodes = 5 })
func (r *Registry) Update(f func(*Status)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f(&r.status)
}

// Snapshot returns a copy of the current status.
func (r *Registry) Snapshot() Status {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := r.status
	s.Plan = append([]int(nil), r.status.Plan...)
	return s
}

// Handler returns an http.Handler serving the status as JSON at any path.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		snap := r.Snapshot()
		if err := json.NewEncoder(w).Encode(snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// MetricsHandler returns an http.Handler exposing the status as
// Prometheus text-format gauges under the `robustscale_` prefix, followed
// by every instrument registered on obs.Default (stage latencies,
// training counters, calibration gauges), so one /metrics endpoint covers
// the whole daemon.
func (r *Registry) MetricsHandler() http.Handler {
	return r.MetricsHandlerFor(obs.Default)
}

// MetricsHandlerFor is MetricsHandler against an explicit obs registry
// (nil appends nothing); tests use it to keep output deterministic.
func (r *Registry) MetricsHandlerFor(reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		snap := r.Snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		var b strings.Builder
		gauge := func(name, help string, v float64) {
			fmt.Fprintf(&b, "# HELP robustscale_%s %s\n", name, help)
			fmt.Fprintf(&b, "# TYPE robustscale_%s gauge\n", name)
			fmt.Fprintf(&b, "robustscale_%s %g\n", name, v)
		}
		gauge("nodes", "Current node allocation.", float64(snap.Nodes))
		gauge("workload", "Most recent observed workload.", snap.Workload)
		gauge("utilization", "Workload relative to the threshold capacity.", snap.Utilization)
		gauge("steps_total", "Control loop iterations.", float64(snap.Steps))
		gauge("violations_total", "Threshold breaches observed.", float64(snap.Violations))
		gauge("scale_outs_total", "Scale-out operations performed.", float64(snap.ScaleOuts))
		gauge("scale_ins_total", "Scale-in operations performed.", float64(snap.ScaleIns))
		gauge("theta", "Per-node workload threshold in effect.", snap.Theta)
		if snap.Parks > 0 || snap.Wakes > 0 || snap.Parked {
			gauge("parked", "1 while the wake guard holds this tenant at zero.", b2f(snap.Parked))
			gauge("parks_total", "Park transitions to zero capacity.", float64(snap.Parks))
			gauge("wakes_total", "Wake transitions from zero capacity.", float64(snap.Wakes))
			gauge("parked_steps_total", "Replay steps spent parked at zero.", float64(snap.ParkedSteps))
		}
		if reg != nil {
			if err := reg.WritePrometheus(&b); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return
		}
	})
}
