# Standard developer entry points; everything is stdlib-only Go.

GO ?= go

.PHONY: all build test vet race cover bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# RACE_PKGS are the packages with real concurrency (worker pools,
# gradient replicas, the shared model zoo); the default test target runs
# them under the race detector on top of the plain suite.
RACE_PKGS = ./internal/parallel/... ./internal/nn/... ./internal/forecast/... ./internal/experiment/...

test:
	$(GO) test ./...
	$(GO) test -race $(RACE_PKGS)

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Regenerate every paper table/figure as benchmarks (quick settings).
bench:
	$(GO) test -bench . -benchmem

# Regenerate every paper table/figure with the CLI runner.
experiments:
	$(GO) run ./cmd/experiment -id all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/capacityplanner
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/thrashing
	$(GO) run ./examples/slo
	$(GO) run ./examples/multiresource

clean:
	$(GO) clean ./...
