# Standard developer entry points; everything is stdlib-only Go.

GO ?= go

.PHONY: all build test vet race cover bench bench-compile bench-save bench-check fuzz fleet-smoke slo-smoke fleet-chaos-smoke wake-smoke ci experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# RACE_PKGS are the packages with real concurrency (worker pools,
# gradient replicas, the shared model zoo, the circuit breaker, the
# chaos cursor and the fleet controller's batched planning); the default
# test target runs them under the race detector on top of the plain
# suite.
RACE_PKGS = ./internal/parallel/... ./internal/nn/... ./internal/forecast/... ./internal/experiment/... ./internal/obs/... ./internal/scaler/... ./internal/chaos/... ./internal/cluster/... ./internal/persist/... ./internal/fleet/...

test:
	$(GO) test ./...
	$(GO) test -race $(RACE_PKGS)

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Regenerate every paper table/figure as benchmarks (quick settings).
bench:
	$(GO) test -bench . -benchmem

# Compile and once-run every benchmark so they cannot rot.
bench-compile:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Planning fast-path latency budget: regenerate the committed baseline
# (bench-save) or gate the working tree against it (bench-check).
bench-save:
	scripts/bench_plan_round.sh save

bench-check:
	scripts/bench_plan_round.sh check

# Short fuzz pass over the checkpoint decoder: arbitrary bytes must
# error cleanly, never panic or over-allocate.
fuzz:
	$(GO) test -fuzz=FuzzLoadCheckpoint -fuzztime=10s ./internal/persist

# Fleet determinism and durability drill (same script CI runs): worker
# counts invisible in results, kill-restart bit-identity, single-tenant
# corruption isolation, tenant-labelled metrics.
fleet-smoke:
	scripts/fleet_smoke.sh

# Fleet health plane drill (same script CI runs): deterministic
# burn-rate alert firing under chaos, /readyz across a warm restart,
# cardinality-capped exposition, SLO-on/off hash invariance.
slo-smoke:
	scripts/slo_smoke.sh

# Shared-capacity and chaos resilience drill (same script CI runs):
# zero-delta fault-free pooled baseline, deterministic shedding across
# worker counts and kill-restarts, zone-outage blast radius <= 1%,
# single-victim quarantine isolation, admission fuzzing, race run.
fleet-chaos-smoke:
	scripts/fleet_chaos_smoke.sh

# Serverless wake-from-zero drill (same script CI runs): fault-free
# scale-to-zero bit-identical across worker counts, wake-storm p99
# inside the SLO budget, zero wake-fault blast radius, kill-restart
# mid-wake bit-identity, park/wake fuzzing, race run.
wake-smoke:
	scripts/wake_smoke.sh

# Everything the CI workflow checks, runnable locally in one shot.
ci: build vet
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) test ./...
	$(GO) test -race $(RACE_PKGS)
	$(MAKE) bench-compile
	$(MAKE) fleet-smoke
	$(MAKE) slo-smoke
	$(MAKE) fleet-chaos-smoke
	$(MAKE) wake-smoke

# Regenerate every paper table/figure with the CLI runner.
experiments:
	$(GO) run ./cmd/experiment -id all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/capacityplanner
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/thrashing
	$(GO) run ./examples/slo
	$(GO) run ./examples/multiresource

clean:
	$(GO) clean ./...
