package robustscale_test

import (
	"testing"

	"robustscale"
)

// TestPublicAPIEndToEnd drives the whole library through the public facade
// only, the way a downstream user would.
func TestPublicAPIEndToEnd(t *testing.T) {
	tr, err := robustscale.GenerateTrace(robustscale.TraceConfig{
		Name: "api-test", Seed: 5, Units: 8, Days: 3,
		BaseLoad: 50, DailyAmp: 0.4, NoiseStd: 0.05, NoisePhi: 0.7,
		Resources: []robustscale.Resource{robustscale.CPU},
	})
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := tr.Series(robustscale.CPU)
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Step != robustscale.DefaultStep {
		t.Errorf("step = %v", cpu.Step)
	}

	cfg := robustscale.DefaultTFTConfig()
	cfg.Context, cfg.Hidden, cfg.Epochs, cfg.MaxWindows = 24, 12, 3, 48
	cfg.TrainHorizon = 12
	cfg.Levels = robustscale.ScalingLevels
	tft := robustscale.NewTFT(cfg)

	pipe := robustscale.NewRobustPipeline(tft, 0.9, 40, 12)
	trainEnd := cpu.Len() * 7 / 10
	if err := pipe.Train(cpu.Slice(0, trainEnd)); err != nil {
		t.Fatal(err)
	}
	report, err := pipe.Run(cpu, cpu.Len()*8/10, robustscale.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if report.Provisioning.Steps == 0 {
		t.Fatal("no steps evaluated")
	}
	if report.Replay == nil {
		t.Fatal("no replay report")
	}

	// Quantile forecast through the facade.
	fan, err := tft.PredictQuantiles(cpu.Slice(0, trainEnd), 12, robustscale.ScalingLevels)
	if err != nil {
		t.Fatal(err)
	}
	us, err := robustscale.ForecastUncertainties(fan)
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 12 {
		t.Errorf("uncertainties = %d", len(us))
	}

	// Allocation helpers.
	if c := robustscale.Allocate(95, 40); c != 3 {
		t.Errorf("Allocate = %d", c)
	}
	plan, err := robustscale.PlanConstrained([]float64{40, 200}, 40, robustscale.ThrashingConfig{Initial: 1, MaxDelta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 {
		t.Errorf("plan = %v", plan)
	}

	// Metrics.
	wql, err := robustscale.WQL(0.9, []float64{10, 10}, []float64{9, 11})
	if err != nil {
		t.Fatal(err)
	}
	if wql <= 0 {
		t.Errorf("wQL = %v", wql)
	}
}

// TestAdaptivePipelineFacade exercises the Algorithm 1 constructor.
func TestAdaptivePipelineFacade(t *testing.T) {
	tr, err := robustscale.GenerateGoogleTrace(3)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := tr.Series(robustscale.CPU)
	if err != nil {
		t.Fatal(err)
	}
	cpu = cpu.Slice(0, 600)

	cfg := robustscale.DefaultDeepARConfig()
	cfg.Context, cfg.Hidden, cfg.Epochs, cfg.MaxWindows = 24, 12, 2, 48
	cfg.TrainHorizon, cfg.Samples = 12, 40
	model := robustscale.NewDeepAR(cfg)

	pipe := robustscale.NewAdaptivePipeline(model, 0.7, 0.95, 1.0, 200, 12)
	if err := pipe.Train(cpu.Slice(0, 480)); err != nil {
		t.Fatal(err)
	}
	report, err := pipe.Run(cpu, 480, robustscale.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if report.Provisioning.Steps == 0 {
		t.Fatal("no steps evaluated")
	}
}
