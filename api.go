package robustscale

import (
	"robustscale/internal/chaos"
	"robustscale/internal/cluster"
	"robustscale/internal/core"
	"robustscale/internal/fleet"
	"robustscale/internal/forecast"
	"robustscale/internal/metrics"
	"robustscale/internal/obs"
	"robustscale/internal/optimize"
	"robustscale/internal/persist"
	"robustscale/internal/qos"
	"robustscale/internal/scaler"
	"robustscale/internal/timeseries"
	"robustscale/internal/trace"
)

// Time series primitives.
type (
	// Series is a regularly sampled univariate workload time series.
	Series = timeseries.Series
	// Window is a (context, target) pair extracted from a series.
	Window = timeseries.Window
)

// New constructs a Series; see timeseries.New.
var NewSeries = timeseries.New

// DefaultStep is the paper's 10-minute aggregation interval.
const DefaultStep = timeseries.DefaultStep

// Trace generation: synthetic stand-ins for the Alibaba and Google cluster
// traces.
type (
	// Trace is a generated cluster trace with per-resource series.
	Trace = trace.Trace
	// TraceConfig controls synthetic trace generation.
	TraceConfig = trace.Config
	// Resource identifies a usage dimension (CPU, Memory, Disk).
	Resource = trace.Resource
)

// Resources available in generated traces.
const (
	CPU    = trace.CPU
	Memory = trace.Memory
	Disk   = trace.Disk
)

// GenerateTrace produces a trace from an explicit configuration.
var GenerateTrace = trace.Generate

// GenerateAlibabaTrace generates the Alibaba-style trace with the given
// seed: strong diurnal cycle, mild noise — the paper's easier dataset.
func GenerateAlibabaTrace(seed int64) (*Trace, error) {
	return trace.Generate(trace.AlibabaStyle(seed))
}

// GenerateGoogleTrace generates the Google-style trace with the given
// seed: bursty, weakly seasonal — the paper's harder dataset.
func GenerateGoogleTrace(seed int64) (*Trace, error) {
	return trace.Generate(trace.GoogleStyle(seed))
}

// Forecasting.
type (
	// Forecaster produces point forecasts (Definition 1).
	Forecaster = forecast.Forecaster
	// QuantileForecaster additionally produces quantile forecasts
	// (Definition 2).
	QuantileForecaster = forecast.QuantileForecaster
	// QuantileForecast is a multi-step quantile forecast fan.
	QuantileForecast = forecast.QuantileForecast

	// ARIMAModel is the classic statistical baseline.
	ARIMAModel = forecast.ARIMA
	// MLPConfig configures the Gaussian-head feed-forward forecaster.
	MLPConfig = forecast.MLPConfig
	// DeepARConfig configures the Student-t autoregressive forecaster.
	DeepARConfig = forecast.DeepARConfig
	// TFTConfig configures the quantile-grid transformer forecaster.
	TFTConfig = forecast.TFTConfig
	// QB5000Config configures the hybrid point forecaster.
	QB5000Config = forecast.QB5000Config
	// PaddedForecaster adds CloudScale-style under-estimation padding to
	// a point forecaster.
	PaddedForecaster = forecast.Padded
)

// Forecaster constructors and defaults.
var (
	NewARIMA = forecast.NewARIMA
	// NewSeasonalARIMA adds seasonal differencing at a fixed period.
	NewSeasonalARIMA = forecast.NewSeasonalARIMA
	NewMLP           = forecast.NewMLP
	// NewQuantileMLP trains the same MLP on pinball loss, directly
	// emitting a pre-specified quantile grid.
	NewQuantileMLP = forecast.NewQuantileMLP
	NewDeepAR      = forecast.NewDeepAR
	NewTFT         = forecast.NewTFT
	// NewTFTPoint trains TFT on only the 0.5 quantile, the paper's
	// point-forecast baseline.
	NewTFTPoint = forecast.NewTFTPoint
	NewQB5000   = forecast.NewQB5000
	NewPadded   = forecast.NewPadded
	// NewNaive and NewSeasonalNaive are the trivial reference baselines
	// every learned forecaster must beat.
	NewNaive         = forecast.NewNaive
	NewSeasonalNaive = forecast.NewSeasonalNaive
	// NewEnsemble combines quantile forecasters by Vincentized quantile
	// averaging.
	NewEnsemble = forecast.NewEnsemble
	// NewConformal wraps a quantile forecaster with split-conformal
	// calibration, repairing coverage with distribution-free guarantees.
	NewConformal = forecast.NewConformal

	DefaultMLPConfig    = forecast.DefaultMLPConfig
	DefaultDeepARConfig = forecast.DefaultDeepARConfig
	DefaultTFTConfig    = forecast.DefaultTFTConfig
	DefaultQB5000Config = forecast.DefaultQB5000Config
)

// Backtesting.
type (
	// BacktestConfig controls a rolling-origin forecaster evaluation.
	BacktestConfig = forecast.BacktestConfig
	// BacktestResult aggregates a rolling-origin evaluation.
	BacktestResult = forecast.BacktestResult
)

// Backtest rolls a trained quantile forecaster over a series and reports
// pooled and per-origin accuracy.
var Backtest = forecast.Backtest

// Quantile grids from the paper's evaluation.
var (
	// DefaultLevels is the Table I evaluation grid {0.1, ..., 0.9}.
	DefaultLevels = forecast.DefaultLevels
	// ScalingLevels is the auto-scaling grid {0.5, ..., 0.99}.
	ScalingLevels = forecast.ScalingLevels
)

// Auto-scaling strategies.
type (
	// Strategy plans node allocations from workload history.
	Strategy = scaler.Strategy
	// ReactiveMax scales on the trailing-window maximum.
	ReactiveMax = scaler.ReactiveMax
	// ReactiveAvg scales on an exponentially decayed trailing average.
	ReactiveAvg = scaler.ReactiveAvg
	// Predictive scales on a point forecast.
	Predictive = scaler.Predictive
	// Robust scales on a fixed quantile forecast (Equation 6).
	Robust = scaler.Robust
	// Adaptive switches quantile levels on forecast uncertainty
	// (Algorithm 1).
	Adaptive = scaler.Adaptive
	// Staircase generalizes Adaptive to a ladder of quantile levels.
	Staircase = scaler.Staircase
	// StaircaseLevel is one rung of a Staircase.
	StaircaseLevel = scaler.StaircaseLevel
	// RateLimited bounds per-step node-count changes (Section V-A).
	RateLimited = scaler.RateLimited
	// EvalConfig controls a rolling strategy evaluation.
	EvalConfig = scaler.EvalConfig
	// EvalResult is the outcome of a rolling strategy evaluation.
	EvalResult = scaler.EvalResult
)

// EvaluateStrategy replays a workload series against a strategy.
var EvaluateStrategy = scaler.Evaluate

// ForecastUncertainties computes the per-step uncertainty metric U
// (Equation 8) of a quantile forecast.
var ForecastUncertainties = scaler.Uncertainties

// Optimization.
type (
	// ThrashingConfig bounds node-count change rates.
	ThrashingConfig = optimize.ThrashingConfig
)

// Optimization entry points (Definitions 3-5).
var (
	// Allocate is the per-step closed form: min nodes with w/c <= theta.
	Allocate = optimize.Allocate
	// PlanAllocations solves the multi-step problem for a workload path.
	PlanAllocations = optimize.Plan
	// PlanConstrained adds the anti-thrashing rate limit.
	PlanConstrained = optimize.PlanConstrained
)

// Cluster simulation.
type (
	// Cluster simulates a storage-disaggregated cloud database.
	Cluster = cluster.Cluster
	// ClusterConfig describes the simulated deployment.
	ClusterConfig = cluster.Config
	// ReplayReport summarizes a warm-up-aware cluster replay.
	ReplayReport = cluster.ReplayReport
)

// NewCluster creates a simulated cluster; see cluster.New.
var NewCluster = cluster.New

// DefaultClusterConfig models a deployment with seconds-scale warm-up
// (Figure 5).
var DefaultClusterConfig = cluster.DefaultConfig

// Metrics.
type (
	// ProvisioningReport summarizes under-/over-provisioning of a plan.
	ProvisioningReport = metrics.ProvisioningReport
)

// Metric entry points from Section IV.
var (
	WQL          = metrics.WQL
	MeanWQL      = metrics.MeanWQL
	Coverage     = metrics.Coverage
	MSE          = metrics.MSE
	Uncertainty  = metrics.Uncertainty
	Provisioning = metrics.Provisioning
)

// End-to-end pipelines.
type (
	// Pipeline couples a trained forecaster with a scaling strategy.
	Pipeline = core.Pipeline
	// RunReport is the outcome of a closed-loop pipeline run.
	RunReport = core.RunReport
)

// Quality of service: the performance-modeling extension of Section V-B.
type (
	// QoSNode describes one compute node as an M/M/c queueing station.
	QoSNode = qos.Node
	// SLO is a latency service level objective.
	SLO = qos.SLO
	// NodeLatencyStats summarizes a node's response-time distribution.
	NodeLatencyStats = qos.Latency
	// QoSReplayReport summarizes a latency-aware cluster replay.
	QoSReplayReport = cluster.QoSReplayReport
)

// QoS entry points.
var (
	// NodeLatency computes the latency distribution of one node under
	// load.
	NodeLatency = qos.NodeLatency
	// CalibrateTheta finds the largest per-node threshold meeting an SLO.
	CalibrateTheta = qos.CalibrateTheta
	// ThetaForUtilization converts a utilization target to a threshold.
	ThetaForUtilization = qos.ThetaForUtilization
)

// Multi-resource scaling.
type (
	// ResourceSpec is one resource dimension of a joint scaling decision.
	ResourceSpec = scaler.ResourceSpec
	// MultiResourcePlan is a joint allocation across resources.
	MultiResourcePlan = scaler.MultiResourcePlan
)

// Multi-resource entry points.
var (
	// PlanMultiResource sizes the cluster so every resource's threshold
	// holds simultaneously.
	PlanMultiResource = scaler.PlanMultiResource
	// EvaluateMultiResource grades a joint plan against realized
	// workloads.
	EvaluateMultiResource = scaler.EvaluateMultiResource
)

// Pipeline constructors.
var (
	// NewRobustPipeline scales on a fixed quantile level (Equation 6).
	NewRobustPipeline = core.NewRobust
	// NewAdaptivePipeline switches quantile levels on uncertainty
	// (Algorithm 1).
	NewAdaptivePipeline = core.NewAdaptive
	// NewPipelineWithStrategy wraps an arbitrary strategy.
	NewPipelineWithStrategy = core.NewWithStrategy
)

// Decision tracing and explainability.
type (
	// Tracer is a bounded recorder of control-loop spans, exportable as
	// Chrome trace-event JSON.
	Tracer = obs.Tracer
	// Span is one in-flight timed region of a Tracer.
	Span = obs.Span
	// Decision is the structured "why did we scale?" record of one
	// planning round.
	Decision = obs.Decision
	// DecisionStore is a bounded, queryable ring of Decisions.
	DecisionStore = obs.DecisionStore
	// DecisionProvider is implemented by strategies that retain the
	// Decision behind their latest plan.
	DecisionProvider = scaler.DecisionProvider
)

// Tracing and decision entry points.
var (
	// NewTracer returns a span recorder with the given capacity.
	NewTracer = obs.NewTracer
	// NewDecisionStore returns a decision ring with the given capacity.
	NewDecisionStore = obs.NewDecisionStore
	// DefaultTracer is the process-wide tracer the daemon serves at
	// /trace; disabled until SetEnabled(true).
	DefaultTracer = obs.DefaultTracer
	// DefaultDecisions is the process-wide decision store the daemon
	// serves at /decisions.
	DefaultDecisions = obs.DefaultDecisions
	// RecordDecision stamps round context onto a strategy's latest
	// decision and records it on DefaultDecisions.
	RecordDecision = scaler.RecordDecision
)

// Fleet health plane: mergeable quantile sketches, heavy-hitter
// tracking, SLO error budgets with burn-rate alerting, and health
// probes.
type (
	// Sketch is a deterministic mergeable quantile sketch with bounded
	// relative error (DDSketch-style log bucketing).
	Sketch = obs.Sketch
	// SketchSnapshot is a Sketch's sorted, serializable image.
	SketchSnapshot = obs.SketchSnapshot
	// TopK is a space-saving heavy-hitter tracker; TopEntry is one
	// tracked key with its count and overestimate bound.
	TopK     = obs.TopK
	TopEntry = obs.TopEntry
	// SLOTracker maintains a rolling error budget over virtual time and
	// evaluates multi-window burn-rate alert rules deterministically.
	SLOTracker = obs.SLOTracker
	// SLOConfig configures an SLOTracker; SLOStatus is its queryable
	// point-in-time state.
	SLOConfig = obs.SLOConfig
	SLOStatus = obs.SLOStatus
	// BurnRule is one multi-window burn-rate alert rule; AlertEvent is
	// one firing/resolved transition.
	BurnRule   = obs.BurnRule
	AlertEvent = obs.AlertEvent
	// Health carries the liveness/readiness state behind /healthz and
	// /readyz.
	Health = obs.Health
)

// Health plane entry points.
var (
	// NewSketch returns a quantile sketch with the given relative
	// accuracy (e.g. 0.01 for 1%).
	NewSketch = obs.NewSketch
	// NewTopK returns a space-saving tracker for the k heaviest keys.
	NewTopK = obs.NewTopK
	// NewSLOTracker returns an error-budget tracker for the config.
	NewSLOTracker = obs.NewSLOTracker
	// NewHealth returns a liveness/readiness probe pair.
	NewHealth = obs.NewHealth
	// DefaultBurnRules scales the classic page/ticket burn-rate pair to
	// an error-budget window.
	DefaultBurnRules = obs.DefaultBurnRules
	// ParseBurnRules parses a "[name=]<factor>x:<long>/<short>,..."
	// rule spec (the -burn-windows flag format).
	ParseBurnRules = obs.ParseBurnRules
)

// DefaultSketchAlpha is the relative accuracy used by the fleet report's
// sketches.
const DefaultSketchAlpha = obs.DefaultSketchAlpha

// Resilience: the guarded control loop and its fault-injection harness.
type (
	// Guard wraps a Strategy with forecast validation/repair and a
	// graceful-degradation ladder (repair, last-known-good, reactive).
	Guard = scaler.Guard
	// GuardConfig tunes the guard's sanity bounds and fallback window.
	GuardConfig = scaler.GuardConfig
	// DegradationMode is the rung of the ladder a guard is operating on.
	DegradationMode = scaler.DegradationMode
	// HealthFunc is an external health gate consulted before planning.
	HealthFunc = scaler.HealthFunc
	// Applier retries scale actions with exponential backoff behind a
	// circuit breaker, holding the current fleet when the control plane
	// stays down.
	Applier = scaler.Applier
	// BackoffConfig shapes the Applier's retry schedule.
	BackoffConfig = scaler.BackoffConfig
	// Breaker is the consecutive-failure circuit breaker.
	Breaker = scaler.Breaker

	// ChaosProfile is a buildable description of a deterministic fault
	// schedule; ChaosSchedule is the per-step realization.
	ChaosProfile  = chaos.Profile
	ChaosSchedule = chaos.Schedule
)

// Degradation ladder rungs, healthiest first.
const (
	ModeNormal        = scaler.ModeNormal
	ModeRepair        = scaler.ModeRepair
	ModeLastKnownGood = scaler.ModeLastKnownGood
	ModeReactive      = scaler.ModeReactive
)

// Resilience entry points.
var (
	// RepairFan validates and repairs a quantile forecast in place:
	// non-finite entries filled, crossings re-sorted, blowups clamped.
	RepairFan = scaler.RepairFan
	// ErrUnrepairableFan reports a fan too damaged to repair.
	ErrUnrepairableFan = scaler.ErrUnrepairableFan
	// ErrBreakerOpen reports a scale action deferred by the open breaker.
	ErrBreakerOpen = scaler.ErrBreakerOpen
	// ChaosPreset resolves a named fault profile (none, forecast,
	// telemetry, apply, node-kill, all, smoke). A built Schedule plugs
	// into Cluster.ReplayWithSchedule, which injects node kills and
	// control-plane faults during a replay.
	ChaosPreset = chaos.Preset
)

// Durability: checkpointed warm restart of the control plane.
type (
	// CheckpointManager writes, retains, and recovers versioned
	// CRC-framed control-plane snapshots in a state directory.
	CheckpointManager = persist.Manager
	// CheckpointState is the full control-plane state one snapshot holds.
	CheckpointState = persist.State
	// CheckpointFingerprint identifies the run configuration a snapshot
	// came from; recovery refuses to resume across a mismatch.
	CheckpointFingerprint = persist.Fingerprint
	// RecoverInfo reports which snapshot recovery used and which files it
	// rejected on the way.
	RecoverInfo = persist.RecoverInfo
	// Snapshotter is implemented by every forecaster that can serialize
	// its trained state and restore it without retraining.
	Snapshotter = forecast.Snapshotter
	// Calibration is the rolling forecast-calibration window; it survives
	// restarts via Save and LoadCalibration.
	Calibration = cluster.Calibration

	// RestartableLoopConfig and RestartableLoopResult drive the chaos
	// harness that crash-restarts an in-process control loop against its
	// checkpoint directory.
	RestartableLoopConfig = chaos.LoopConfig
	RestartableLoopResult = chaos.LoopResult
)

// Durability entry points.
var (
	// NewCheckpointManager opens (creating it if needed) a checkpoint
	// directory with the given retention.
	NewCheckpointManager = persist.NewManager
	// LoadCalibration restores a calibration window saved with
	// Calibration.Save.
	LoadCalibration = cluster.LoadCalibration
	// RunRestartableLoop replays a control loop through scheduled
	// crash-restart faults, recovering from checkpoints after each one.
	RunRestartableLoop = chaos.RunRestartable

	// ErrCheckpointCorrupt reports a snapshot that failed CRC or framing
	// validation; ErrCheckpointVersionSkew one written by an incompatible
	// format version; ErrNoCheckpoint a recovery with nothing usable.
	ErrCheckpointCorrupt     = persist.ErrCorrupt
	ErrCheckpointVersionSkew = persist.ErrVersionSkew
	ErrNoCheckpoint          = persist.ErrNoCheckpoint
)

// ChaosCrashRestart is the crash-restart fault class consumed by the
// restartable loop harness.
const ChaosCrashRestart = chaos.CrashRestart

// Multi-tenant fleet control plane.
type (
	// FleetConfig sizes and parameterizes a multi-tenant fleet run.
	FleetConfig = fleet.Config
	// FleetController replays N independent tenants in lock-step
	// planning rounds, batching forecaster inference across a worker
	// pool without changing a single output bit.
	FleetController = fleet.Controller
	// FleetReport is the aggregate outcome of a fleet run, including
	// the deterministic fleet hash.
	FleetReport = fleet.Report
	// FleetTenantReport is one tenant's deterministic replay outcome.
	FleetTenantReport = fleet.TenantReport
	// FleetPoolReport aggregates the shared-pool admission outcome.
	FleetPoolReport = fleet.PoolReport
	// FleetPriorityClass is a tenant's shedding priority in the shared
	// capacity pool (guaranteed / burstable / best-effort).
	FleetPriorityClass = fleet.PriorityClass
	// FleetBlastRadius quantifies how far a fault schedule leaked
	// beyond the tenants it targets.
	FleetBlastRadius = fleet.BlastRadius
	// FleetMatrixCell is one row of the fleet resilience matrix.
	FleetMatrixCell = fleet.MatrixCell
)

// Priority classes for the shared capacity pool, shed in reverse order.
const (
	FleetClassGuaranteed = fleet.ClassGuaranteed
	FleetClassBurstable  = fleet.ClassBurstable
	FleetClassBestEffort = fleet.ClassBestEffort
)

// Fleet entry points.
var (
	// NewFleet validates the configuration and builds (or recovers)
	// every tenant.
	NewFleet = fleet.New
	// DefaultFleetConfig is a small-trace fleet configuration sized for
	// simulation.
	DefaultFleetConfig = fleet.DefaultConfig
	// FleetTenantID derives the canonical tenant id for an index.
	FleetTenantID = fleet.TenantID
	// FleetClassOf derives a tenant index's pool priority class.
	FleetClassOf = fleet.ClassOf
	// FleetBlastRadiusOf measures bystander drift between a fault-free
	// baseline report and a chaos run.
	FleetBlastRadiusOf = fleet.MeasureBlastRadius
	// FleetResilienceMatrix runs a baseline plus one fleet per chaos
	// preset, reporting blast radius per row.
	FleetResilienceMatrix = fleet.ResilienceMatrix
)
