package robustscale_test

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches called out in DESIGN.md. Each bench regenerates its
// artifact through the experiment harness; model training is shared across
// benches via a process-wide zoo and excluded from the timed region, so
// the reported time is the cost of regenerating the artifact itself.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// and print the regenerated artifacts with -v via the Example-style logs.

import (
	"io"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"robustscale/internal/experiment"
	"robustscale/internal/forecast"
	"robustscale/internal/obs"
	"robustscale/internal/optimize"
	"robustscale/internal/scaler"
	"robustscale/internal/timeseries"
)

var (
	zooOnce sync.Once
	zooInst *experiment.Zoo
	zooErr  error
)

// benchZoo builds the shared quick-config zoo (and trains models lazily).
func benchZoo(b *testing.B) *experiment.Zoo {
	b.Helper()
	zooOnce.Do(func() {
		zooInst, zooErr = experiment.NewZoo(experiment.QuickConfig())
	})
	if zooErr != nil {
		b.Fatal(zooErr)
	}
	return zooInst
}

// pretrain forces the models a bench needs into the cache before the
// timed region.
func pretrainQuantile(b *testing.B, z *experiment.Zoo, ds experiment.DatasetName, models ...experiment.ModelName) {
	b.Helper()
	for _, m := range models {
		if _, err := z.Quantile(m, ds, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	z := benchZoo(b)
	for _, ds := range []experiment.DatasetName{experiment.Alibaba, experiment.Google} {
		pretrainQuantile(b, z, ds, experiment.QuantileModels...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Table1(z)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRender(b, "Table I", func(w io.Writer) error { return experiment.RenderTable1(w, rows) })
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	z := benchZoo(b)
	pretrainQuantile(b, z, experiment.Alibaba, experiment.ModelDeepAR, experiment.ModelTFT)
	if _, err := z.Point(experiment.ModelQB5000, experiment.Alibaba, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Table2(z)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRender(b, "Table II", func(w io.Writer) error { return experiment.RenderTable2(w, rows) })
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	z := benchZoo(b)
	pretrainQuantile(b, z, experiment.Alibaba, experiment.ModelDeepAR, experiment.ModelTFT)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Table3(z)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRender(b, "Table III", func(w io.Writer) error { return experiment.RenderTable3(w, rows) })
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Figure5(start)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRender(b, "Figure 5", func(w io.Writer) error { return experiment.RenderFigure5(w, rows) })
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	z := benchZoo(b)
	pretrainQuantile(b, z, experiment.Google, experiment.ModelDeepAR)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, corrMSE, corrQL, err := experiment.Figure6(z, experiment.Google, experiment.ModelDeepAR)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRender(b, "Figure 6", func(w io.Writer) error {
				return experiment.RenderFigure6(w, points, corrMSE, corrQL)
			})
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	z := benchZoo(b)
	pretrainQuantile(b, z, experiment.Alibaba, experiment.ModelMLP, experiment.ModelDeepAR, experiment.ModelTFT)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bands, err := experiment.Figure7(z, experiment.Alibaba)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRender(b, "Figure 7", func(w io.Writer) error { return experiment.RenderFigure7(w, bands) })
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	z := benchZoo(b)
	pretrainQuantile(b, z, experiment.Alibaba, experiment.QuantileModels...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Figure8(z, experiment.Alibaba)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRender(b, "Figure 8", func(w io.Writer) error { return experiment.RenderFigure8(w, rows) })
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	z := benchZoo(b)
	for _, ds := range []experiment.DatasetName{experiment.Alibaba, experiment.Google} {
		pretrainQuantile(b, z, ds, experiment.ModelDeepAR, experiment.ModelTFT)
		for _, m := range []experiment.ModelName{experiment.ModelQB5000, experiment.ModelTFTPoint} {
			for run := 0; run < 2; run++ {
				if _, err := z.Point(m, ds, run); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ds := range []experiment.DatasetName{experiment.Alibaba, experiment.Google} {
			rows, err := experiment.Figure9(z, ds)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				logRender(b, "Figure 9 "+string(ds), func(w io.Writer) error { return experiment.RenderFigure9(w, rows) })
			}
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	z := benchZoo(b)
	pretrainQuantile(b, z, experiment.Google, experiment.ModelTFT)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Figure10(z, experiment.Google, experiment.ModelTFT)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRender(b, "Figure 10", func(w io.Writer) error { return experiment.RenderFigure10(w, rows) })
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	z := benchZoo(b)
	pretrainQuantile(b, z, experiment.Google, experiment.ModelDeepAR, experiment.ModelTFT)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, model := range []experiment.ModelName{experiment.ModelDeepAR, experiment.ModelTFT} {
			cells, err := experiment.Figure11(z, experiment.Google, model)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				logRender(b, "Figure 11 "+string(model), func(w io.Writer) error { return experiment.RenderFigure11(w, cells) })
			}
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	z := benchZoo(b)
	pretrainQuantile(b, z, experiment.Google, experiment.ModelTFT)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Figure12(z, experiment.Google, experiment.ModelTFT, 0.7, 0.95)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRender(b, "Figure 12", func(w io.Writer) error { return experiment.RenderFigure12(w, rows) })
		}
	}
}

// --- Ablation benches (DESIGN.md section 4) ---

// benchTrace builds a small shared workload for the ablations.
var (
	ablOnce sync.Once
	ablWl   *timeseries.Series
)

func ablationWorkload(b *testing.B) *timeseries.Series {
	b.Helper()
	ablOnce.Do(func() {
		z, err := experiment.NewZoo(experiment.QuickConfig())
		if err != nil {
			panic(err)
		}
		d, err := z.Dataset(experiment.Alibaba)
		if err != nil {
			panic(err)
		}
		ablWl = d.Series
	})
	return ablWl
}

// BenchmarkAblationEmission compares DeepAR's Student-t emission against a
// Gaussian head: same architecture, different likelihood.
func BenchmarkAblationEmission(b *testing.B) {
	wl := ablationWorkload(b)
	train := wl.Slice(0, wl.Len()*7/10)
	for _, emission := range []forecast.Emission{forecast.EmitStudentT, forecast.EmitGaussian} {
		b.Run(string(emission), func(b *testing.B) {
			cfg := forecast.DeepARConfig{
				Context: 72, Hidden: 24, Epochs: 3, LR: 1e-3, Seed: 1,
				MaxWindows: 64, Samples: 100, TrainHorizon: 72, Emission: emission,
			}
			m := forecast.NewDeepAR(cfg)
			if err := m.Fit(train); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.PredictQuantiles(train, 72, forecast.ScalingLevels); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSampleCount sweeps DeepAR's Monte-Carlo sample count:
// the accuracy/latency dial behind Table III's inference cost.
func BenchmarkAblationSampleCount(b *testing.B) {
	wl := ablationWorkload(b)
	train := wl.Slice(0, wl.Len()*7/10)
	base := forecast.DeepARConfig{
		Context: 72, Hidden: 24, Epochs: 3, LR: 1e-3, Seed: 1,
		MaxWindows: 64, TrainHorizon: 72,
	}
	for _, samples := range []int{20, 100, 500} {
		cfg := base
		cfg.Samples = samples
		m := forecast.NewDeepAR(cfg)
		if err := m.Fit(train); err != nil {
			b.Fatal(err)
		}
		b.Run(benchName("samples", samples), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.PredictQuantiles(train, 72, forecast.ScalingLevels); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStaircase compares two-level Algorithm 1 against the
// staircase extension.
func BenchmarkAblationStaircase(b *testing.B) {
	z := benchZoo(b)
	pretrainQuantile(b, z, experiment.Google, experiment.ModelTFT)
	qf, err := z.Quantile(experiment.ModelTFT, experiment.Google, 0)
	if err != nil {
		b.Fatal(err)
	}
	d, err := z.Dataset(experiment.Google)
	if err != nil {
		b.Fatal(err)
	}
	rho, err := experiment.CalibrateRho(z, experiment.Google, experiment.ModelTFT, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	cfg := z.Config()
	strategies := map[string]scaler.Strategy{
		"two-level": &scaler.Adaptive{Forecaster: qf, Tau1: 0.7, Tau2: 0.95, Rho: rho, Theta: cfg.Theta},
		"staircase": &scaler.Staircase{
			Forecaster: qf, Base: 0.6, Theta: cfg.Theta,
			Rungs: []scaler.StaircaseLevel{
				{Rho: rho * 0.5, Tau: 0.8},
				{Rho: rho, Tau: 0.9},
				{Rho: rho * 2, Tau: 0.99},
			},
		},
	}
	for name, strat := range strategies {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := scaler.Evaluate(strat, d.Series, scaler.EvalConfig{
					Theta: cfg.Theta, Horizon: cfg.Horizon, Start: d.EvalStart,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%s: under %.2f%% over %.2f%%", res.Strategy,
						100*res.Report.UnderProvisionRate, 100*res.Report.OverProvisionRate)
				}
			}
		})
	}
}

// BenchmarkAblationThrashing measures the cost and effect of the rate
// limit from Section V-A.
func BenchmarkAblationThrashing(b *testing.B) {
	wl := ablationWorkload(b)
	demand := wl.Values[wl.Len()*8/10:]
	for _, withLimit := range []bool{false, true} {
		name := "unconstrained"
		if withLimit {
			name = "ratelimited"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if withLimit {
					if _, err := optimize.PlanConstrained(demand, 100, optimize.ThrashingConfig{Initial: 1, MaxDelta: 2}); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, err := optimize.Plan(demand, 100); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationContext sweeps the TFT context window: longer contexts
// cost quadratically in attention but only help while they add seasonal
// information.
func BenchmarkAblationContext(b *testing.B) {
	wl := ablationWorkload(b)
	train := wl.Slice(0, wl.Len()*7/10)
	evalStart := wl.Len() * 8 / 10
	for _, context := range []int{24, 72, 144} {
		cfg := forecast.TFTConfig{
			Context: context, Hidden: 24, Epochs: 3, LR: 1e-3, Seed: 1,
			MaxWindows: 64, Levels: forecast.ScalingLevels, TrainHorizon: 72,
		}
		m := forecast.NewTFT(cfg)
		if err := m.Fit(train); err != nil {
			b.Fatal(err)
		}
		b.Run(benchName("context", context), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f, err := m.PredictQuantiles(wl.Slice(0, evalStart), 72, forecast.ScalingLevels)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					// One-shot accuracy note for the log.
					actual := wl.Values[evalStart : evalStart+72]
					loss := 0.0
					for t, y := range actual {
						loss += forecast.PinballLoss(0.9, y, f.At(t, 0.9))
					}
					b.Logf("context=%d pinball@0.9=%.1f", context, loss/72)
				}
			}
		})
	}
}

// BenchmarkAblationConformal compares raw DeepAR against its
// conformal-calibrated wrap on the Alibaba trace, where Table I shows
// DeepAR under-covering: the wrap repairs coverage and with it the robust
// scaler's under-provisioning.
func BenchmarkAblationConformal(b *testing.B) {
	wl := ablationWorkload(b)
	train := wl.Slice(0, wl.Len()*7/10)
	evalStart := wl.Len() * 8 / 10
	base := forecast.DeepARConfig{
		Context: 72, Hidden: 24, Epochs: 8, LR: 1e-3, Seed: 1,
		MaxWindows: 128, Samples: 100, TrainHorizon: 72,
	}

	models := map[string]forecast.QuantileForecaster{}
	raw := forecast.NewDeepAR(base)
	if err := raw.Fit(train); err != nil {
		b.Fatal(err)
	}
	models["raw"] = raw
	wrapped := forecast.NewConformal(forecast.NewDeepAR(base))
	wrapped.Horizon = 72
	if err := wrapped.Fit(train); err != nil {
		b.Fatal(err)
	}
	models["conformal"] = wrapped

	for name, m := range models {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := scaler.Evaluate(
					&scaler.Robust{Forecaster: m, Tau: 0.9, Theta: 100},
					wl,
					scaler.EvalConfig{Theta: 100, Horizon: 72, Start: evalStart},
				)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%s: under %.2f%% over %.2f%%", res.Strategy,
						100*res.Report.UnderProvisionRate, 100*res.Report.OverProvisionRate)
				}
			}
		})
	}
}

// BenchmarkAblationHeads sweeps the TFT attention head count: more heads
// cost the same flops (the head dimension shrinks) but change what the
// block can express.
func BenchmarkAblationHeads(b *testing.B) {
	wl := ablationWorkload(b)
	train := wl.Slice(0, wl.Len()*7/10)
	evalStart := wl.Len() * 8 / 10
	for _, heads := range []int{1, 2, 4} {
		cfg := forecast.TFTConfig{
			Context: 72, Hidden: 24, Epochs: 3, LR: 1e-3, Seed: 1,
			MaxWindows: 64, Levels: forecast.ScalingLevels, TrainHorizon: 72,
			Heads: heads,
		}
		m := forecast.NewTFT(cfg)
		if err := m.Fit(train); err != nil {
			b.Fatal(err)
		}
		b.Run(benchName("heads", heads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f, err := m.PredictQuantiles(wl.Slice(0, evalStart), 72, forecast.ScalingLevels)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					actual := wl.Values[evalStart : evalStart+72]
					loss := 0.0
					for t, y := range actual {
						loss += forecast.PinballLoss(0.9, y, f.At(t, 0.9))
					}
					b.Logf("heads=%d pinball@0.9=%.1f", heads, loss/72)
				}
			}
		})
	}
}

// BenchmarkAblationSolver compares the closed-form allocation against the
// simplex LP on identical inputs (they agree; the LP pays for generality).
func BenchmarkAblationSolver(b *testing.B) {
	wl := ablationWorkload(b)
	demand := wl.Values[wl.Len()*8/10 : wl.Len()*8/10+72]
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := optimize.Plan(demand, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("simplex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := optimize.PlanLP(demand, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSketchObserve measures the health plane's quantile sketch on
// its hot path: one Observe per control-loop sample.
func BenchmarkSketchObserve(b *testing.B) {
	sk := obs.NewSketch(obs.DefaultSketchAlpha)
	vals := sketchBenchValues(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Observe(vals[i&4095])
	}
}

// BenchmarkSketchMerge measures folding one shard's sketch into the
// fleet aggregate, the per-tenant cost of assembling a fleet report.
func BenchmarkSketchMerge(b *testing.B) {
	shard := obs.NewSketch(obs.DefaultSketchAlpha)
	for _, v := range sketchBenchValues(4096) {
		shard.Observe(v)
	}
	agg := obs.NewSketch(obs.DefaultSketchAlpha)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := agg.Merge(shard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSketchQuantile measures a percentile query against a
// populated sketch (the /slo and report read path).
func BenchmarkSketchQuantile(b *testing.B) {
	sk := obs.NewSketch(obs.DefaultSketchAlpha)
	for _, v := range sketchBenchValues(65536) {
		sk.Observe(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += sk.Percentile(99)
	}
	_ = sink
}

// sketchBenchValues generates a deterministic log-spread sample via a
// xorshift generator (no math/rand dependency in the timed setup).
func sketchBenchValues(n int) []float64 {
	vals := make([]float64, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range vals {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		vals[i] = 1e-3 + float64(state%1_000_000)/1e3
	}
	return vals
}

func benchName(prefix string, n int) string {
	return prefix + "-" + strconv.Itoa(n)
}

// logRender renders an artifact into the bench log on the first
// iteration so `go test -bench . -v` shows the regenerated tables.
func logRender(b *testing.B, title string, render func(io.Writer) error) {
	b.Helper()
	var sb strings.Builder
	if err := render(&sb); err != nil {
		b.Fatal(err)
	}
	b.Logf("%s:\n%s", title, sb.String())
}
