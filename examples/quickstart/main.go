// Command quickstart is the minimal end-to-end tour of the library:
// generate a synthetic cluster trace, train a TFT quantile forecaster, and
// run the robust auto-scaler (Equation 6) against the held-out tail of the
// trace, reporting under-/over-provisioning and the warm-up-aware cluster
// replay.
package main

import (
	"fmt"
	"log"

	"robustscale"
)

func main() {
	log.SetFlags(0)

	// 1. Workload: an Alibaba-style cluster trace aggregated at
	// 10-minute intervals.
	tr, err := robustscale.GenerateAlibabaTrace(42)
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := tr.Series(robustscale.CPU)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %s, %d steps of %v, mean CPU %.0f\n",
		cpu.Name, cpu.Len(), cpu.Step, cpu.Mean())

	// 2. Forecaster: a TFT trained to emit a grid of quantiles. Small
	// training budget so the example runs in seconds.
	cfg := robustscale.DefaultTFTConfig()
	cfg.Epochs = 4
	cfg.Hidden = 24
	cfg.MaxWindows = 96
	tft := robustscale.NewTFT(cfg)

	// 3. Pipeline: scale on the 0.9-quantile forecast with a per-node
	// threshold of 100 CPU units, planning 72 steps (12 hours) at a time.
	const (
		theta   = 100.0
		horizon = 72
	)
	pipe := robustscale.NewRobustPipeline(tft, 0.9, theta, horizon)

	trainEnd := cpu.Len() * 7 / 10
	fmt.Printf("training %s on %d steps...\n", tft.Name(), trainEnd)
	if err := pipe.Train(cpu.Slice(0, trainEnd)); err != nil {
		log.Fatal(err)
	}

	// 4. Run closed-loop over the final 20% of the trace.
	evalStart := cpu.Len() * 8 / 10
	report, err := pipe.Run(cpu, evalStart, robustscale.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nstrategy %s over %d steps:\n", report.Strategy, report.Provisioning.Steps)
	fmt.Printf("  under-provisioned: %5.2f%% of steps\n", 100*report.Provisioning.UnderProvisionRate)
	fmt.Printf("  over-provisioned:  %5.2f%% of steps\n", 100*report.Provisioning.OverProvisionRate)
	fmt.Printf("  mean utilization:  %5.1f%% of the threshold\n", 100*report.Provisioning.MeanUtilization)
	fmt.Printf("  node-steps: %d allocated vs %d minimum\n",
		report.Provisioning.TotalNodes, report.Provisioning.TotalMinimumNodes)
	fmt.Printf("cluster replay (warm-up modeled): %.2f%% threshold violations, %d scale-outs, %d scale-ins\n",
		100*report.Replay.ViolationRate, report.Replay.ScaleOuts, report.Replay.ScaleIns)
}
