// Command capacityplanner demonstrates 12-hour look-ahead capacity
// planning for a cloud database fleet: a DeepAR forecaster produces a
// quantile fan for the next 72 intervals and the planner prints, per
// interval, the workload band and the node counts an aggressive (0.5),
// balanced (0.8) and conservative (0.95) policy would commit to — the
// conservatism dial of the paper made tangible.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"robustscale"
)

func main() {
	log.SetFlags(0)

	tr, err := robustscale.GenerateGoogleTrace(7)
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := tr.Series(robustscale.CPU)
	if err != nil {
		log.Fatal(err)
	}

	cfg := robustscale.DefaultDeepARConfig()
	cfg.Epochs = 4
	cfg.Hidden = 24
	cfg.MaxWindows = 96
	model := robustscale.NewDeepAR(cfg)

	trainEnd := cpu.Len() * 8 / 10
	fmt.Printf("training %s on %d steps of %s...\n", model.Name(), trainEnd, cpu.Name)
	if err := model.Fit(cpu.Slice(0, trainEnd)); err != nil {
		log.Fatal(err)
	}

	const (
		theta   = 100.0
		horizon = 72
	)
	history := cpu.Slice(0, trainEnd)
	forecastLevels := []float64{0.1, 0.5, 0.8, 0.95}
	fan, err := model.PredictQuantiles(history, horizon, forecastLevels)
	if err != nil {
		log.Fatal(err)
	}

	policies := []struct {
		label string
		tau   float64
	}{
		{"aggressive(0.5)", 0.5},
		{"balanced(0.8)", 0.8},
		{"conservative(0.95)", 0.95},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "time\tP10\tP50\tP95\taggressive\tbalanced\tconservative")
	totals := make([]int, len(policies))
	for t := 0; t < horizon; t += 6 { // print hourly
		ts := history.TimeAt(history.Len() + t)
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f",
			ts.Format("Jan 02 15:04"), fan.At(t, 0.1), fan.At(t, 0.5), fan.At(t, 0.95))
		for _, p := range policies {
			fmt.Fprintf(tw, "\t%d", robustscale.Allocate(fan.At(t, p.tau), theta))
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	// Full-horizon totals: what each policy costs in node-steps, and how
	// each would have fared against the realized workload.
	actual := cpu.Values[trainEnd : trainEnd+horizon]
	fmt.Println("\nfull 12-hour plan vs realized workload:")
	for i, p := range policies {
		path := make([]float64, horizon)
		for t := 0; t < horizon; t++ {
			path[t] = fan.At(t, p.tau)
		}
		plan, err := robustscale.PlanAllocations(path, theta)
		if err != nil {
			log.Fatal(err)
		}
		report, err := robustscale.Provisioning(actual, plan, theta)
		if err != nil {
			log.Fatal(err)
		}
		totals[i] = report.TotalNodes
		fmt.Printf("  %-20s %4d node-steps, %5.1f%% under-provisioned, %5.1f%% over-provisioned\n",
			p.label, report.TotalNodes,
			100*report.UnderProvisionRate, 100*report.OverProvisionRate)
	}
	fmt.Printf("\nthe conservative policy costs %+d node-steps over aggressive — the price of robustness\n",
		totals[2]-totals[0])
}
