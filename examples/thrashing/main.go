// Command thrashing demonstrates the anti-flapping control of Section V-A:
// on a spiky workload the raw robust plan jumps the node count by many
// nodes at once, while the rate-limited plan (solved exactly by dynamic
// programming) bounds every action to MaxDelta nodes — pre-scaling ahead
// of forecasted spikes where an abrupt jump would otherwise be needed.
package main

import (
	"fmt"
	"log"

	"robustscale"
)

func main() {
	log.SetFlags(0)

	tr, err := robustscale.GenerateGoogleTrace(99)
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := tr.Series(robustscale.CPU)
	if err != nil {
		log.Fatal(err)
	}

	cfg := robustscale.DefaultDeepARConfig()
	cfg.Epochs = 3
	cfg.Hidden = 24
	cfg.MaxWindows = 96
	cfg.Samples = 80
	model := robustscale.NewDeepAR(cfg)

	const (
		theta   = 100.0
		horizon = 72
	)
	trainEnd := cpu.Len() * 7 / 10
	evalStart := cpu.Len() * 8 / 10
	fmt.Printf("training %s on %d steps of %s...\n", model.Name(), trainEnd, cpu.Name)
	if err := model.Fit(cpu.Slice(0, trainEnd)); err != nil {
		log.Fatal(err)
	}

	raw := &robustscale.Robust{Forecaster: model, Tau: 0.9, Theta: theta}
	limited := &robustscale.RateLimited{
		Inner:    &robustscale.Robust{Forecaster: model, Tau: 0.9, Theta: theta},
		MaxDelta: 2,
	}

	for _, strat := range []robustscale.Strategy{raw, limited} {
		res, err := robustscale.EvaluateStrategy(strat, cpu, robustscale.EvalConfig{
			Theta:   theta,
			Horizon: horizon,
			Start:   evalStart,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Replay the allocations on the simulated disaggregated database
		// to count actual scaling operations.
		evaluated := cpu.Slice(evalStart, evalStart+len(res.Allocations))
		c, err := robustscale.NewCluster(robustscale.DefaultClusterConfig(), evaluated.Start, res.Allocations[0])
		if err != nil {
			log.Fatal(err)
		}
		replay, err := c.Replay(evaluated, res.Allocations, theta)
		if err != nil {
			log.Fatal(err)
		}

		changes, maxDelta := planChurn(res.Allocations)
		fmt.Printf("\n%s:\n", res.Strategy)
		fmt.Printf("  under-provisioned: %5.2f%%   over-provisioned: %5.2f%%\n",
			100*res.Report.UnderProvisionRate, 100*res.Report.OverProvisionRate)
		fmt.Printf("  plan churn: %d node-count changes, max step delta %d\n", changes, maxDelta)
		fmt.Printf("  cluster ops: %d scale-outs, %d scale-ins\n", replay.ScaleOuts, replay.ScaleIns)
	}
	fmt.Println("\nthe rate-limited plan bounds every scaling action to MaxDelta nodes, replacing")
	fmt.Println("mass scale events with gradual ramps (pre-scaling ahead of forecasted spikes)")
}

// planChurn counts node-count changes and the maximum per-step delta.
func planChurn(plan []int) (changes, maxDelta int) {
	for i := 1; i < len(plan); i++ {
		d := plan[i] - plan[i-1]
		if d < 0 {
			d = -d
		}
		if d > 0 {
			changes++
		}
		if d > maxDelta {
			maxDelta = d
		}
	}
	return changes, maxDelta
}
