// Command adaptive contrasts the fixed-quantile robust scaler (Equation 6)
// with the uncertainty-aware adaptive scaler (Algorithm 1) on the bursty
// Google-style trace: the adaptive strategy should cut over-provisioning
// without giving back robustness, which is the paper's Figure 11 claim.
package main

import (
	"fmt"
	"log"

	"robustscale"
)

func main() {
	log.SetFlags(0)

	tr, err := robustscale.GenerateGoogleTrace(21)
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := tr.Series(robustscale.CPU)
	if err != nil {
		log.Fatal(err)
	}

	cfg := robustscale.DefaultTFTConfig()
	cfg.Epochs = 4
	cfg.Hidden = 24
	cfg.MaxWindows = 96
	cfg.Levels = robustscale.ScalingLevels
	tft := robustscale.NewTFT(cfg)

	const (
		theta   = 100.0
		horizon = 72
	)
	trainEnd := cpu.Len() * 7 / 10
	evalStart := cpu.Len() * 8 / 10
	fmt.Printf("training %s on %d steps of %s...\n", tft.Name(), trainEnd, cpu.Name)
	if err := tft.Fit(cpu.Slice(0, trainEnd)); err != nil {
		log.Fatal(err)
	}

	// Calibrate the uncertainty threshold on the span between training
	// and evaluation, as the paper prescribes: the median per-step
	// uncertainty of historical forecasts.
	var calibration []float64
	for origin := trainEnd; origin+horizon <= evalStart; origin += horizon {
		fan, err := tft.PredictQuantiles(cpu.Slice(0, origin), horizon, robustscale.ScalingLevels)
		if err != nil {
			log.Fatal(err)
		}
		us, err := robustscale.ForecastUncertainties(fan)
		if err != nil {
			log.Fatal(err)
		}
		calibration = append(calibration, us...)
	}
	calSeries := robustscale.NewSeries("calibration", cpu.Start, cpu.Step, calibration)
	rho := calSeries.Quantile(0.5)
	fmt.Printf("calibrated uncertainty threshold rho = %.2f (median of %d steps)\n", rho, len(calibration))

	strategies := []robustscale.Strategy{
		&robustscale.Robust{Forecaster: tft, Tau: 0.7, Theta: theta},
		&robustscale.Robust{Forecaster: tft, Tau: 0.95, Theta: theta},
		&robustscale.Adaptive{Forecaster: tft, Tau1: 0.7, Tau2: 0.95, Rho: rho, Theta: theta},
		&robustscale.Staircase{
			Forecaster: tft,
			Base:       0.6,
			Rungs: []robustscale.StaircaseLevel{
				{Rho: rho * 0.5, Tau: 0.8},
				{Rho: rho, Tau: 0.9},
				{Rho: rho * 2, Tau: 0.99},
			},
			Theta: theta,
		},
	}

	fmt.Printf("\n%-22s %14s %14s %12s\n", "strategy", "under-prov.", "over-prov.", "node-steps")
	for _, strat := range strategies {
		res, err := robustscale.EvaluateStrategy(strat, cpu, robustscale.EvalConfig{
			Theta:   theta,
			Horizon: horizon,
			Start:   evalStart,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %13.2f%% %13.2f%% %12d\n",
			res.Strategy,
			100*res.Report.UnderProvisionRate,
			100*res.Report.OverProvisionRate,
			res.Report.TotalNodes)
	}
	fmt.Println("\nthe adaptive rows should match the conservative row's robustness at lower cost")
}
