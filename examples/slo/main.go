// Command slo closes the loop the paper leaves to future work
// (Section V-B): instead of hand-picking the scaling threshold theta, it
// is calibrated from a latency Service Level Objective via an M/M/c
// performance model, the robust auto-scaler plans against that threshold,
// and the plan is replayed with latency modeled — reporting the SLO
// outcome operators actually care about.
package main

import (
	"fmt"
	"log"
	"time"

	"robustscale"
)

func main() {
	log.SetFlags(0)

	// The database's compute nodes: 8 workers at 100 queries/sec each.
	node := robustscale.QoSNode{ServiceRate: 100, Workers: 8}
	slo := robustscale.SLO{Percentile: 0.99, Target: 60 * time.Millisecond}

	theta, err := robustscale.CalibrateTheta(node, slo)
	if err != nil {
		log.Fatal(err)
	}
	capacity := float64(node.Workers) * node.ServiceRate
	fmt.Printf("SLO: p99 <= %v\n", slo.Target)
	fmt.Printf("calibrated threshold: %.0f qps per node (%.0f%% of raw capacity %.0f)\n\n",
		theta, 100*theta/capacity, capacity)

	// Interpret the synthetic trace as a cluster-wide query arrival rate.
	tr, err := robustscale.GenerateAlibabaTrace(42)
	if err != nil {
		log.Fatal(err)
	}
	qps, err := tr.Series(robustscale.CPU)
	if err != nil {
		log.Fatal(err)
	}

	cfg := robustscale.DefaultTFTConfig()
	cfg.Epochs = 4
	cfg.Hidden = 24
	cfg.MaxWindows = 96
	tft := robustscale.NewTFT(cfg)

	const horizon = 72
	trainEnd := qps.Len() * 7 / 10
	evalStart := qps.Len() * 8 / 10
	fmt.Printf("training %s on %d steps...\n", tft.Name(), trainEnd)
	if err := tft.Fit(qps.Slice(0, trainEnd)); err != nil {
		log.Fatal(err)
	}

	for _, tau := range []float64{0.5, 0.9} {
		strat := &robustscale.Robust{Forecaster: tft, Tau: tau, Theta: theta}
		res, err := robustscale.EvaluateStrategy(strat, qps, robustscale.EvalConfig{
			Theta: theta, Horizon: horizon, Start: evalStart,
		})
		if err != nil {
			log.Fatal(err)
		}

		evaluated := qps.Slice(evalStart, evalStart+len(res.Allocations))
		c, err := robustscale.NewCluster(robustscale.DefaultClusterConfig(), evaluated.Start, res.Allocations[0])
		if err != nil {
			log.Fatal(err)
		}
		report, err := c.ReplayQoS(evaluated, res.Allocations, node, slo)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\n%s against the latency SLO over %d steps:\n", res.Strategy, len(report.Steps))
		fmt.Printf("  SLO violations: %5.2f%% of steps\n", 100*report.ViolationRate)
		fmt.Printf("  worst p99:      %v\n", report.WorstP99.Round(time.Millisecond))
		fmt.Printf("  mean node utilization: %.0f%%\n", 100*report.MeanUtilzation)
		fmt.Printf("  node-steps allocated:  %d\n", res.Report.TotalNodes)
	}
	fmt.Println("\nthe 0.9-quantile plan buys SLO compliance that the median plan cannot deliver")
}
