// Command multiresource scales a cloud database on CPU and memory
// jointly: each resource gets its own quantile forecaster and threshold,
// and the cluster is sized to the binding resource at every step — the
// multivariate generalization that Equation 2 of the paper anticipates.
package main

import (
	"fmt"
	"log"

	"robustscale"
)

func main() {
	log.SetFlags(0)

	tr, err := robustscale.GenerateAlibabaTrace(42)
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := tr.Series(robustscale.CPU)
	if err != nil {
		log.Fatal(err)
	}
	mem, err := tr.Series(robustscale.Memory)
	if err != nil {
		log.Fatal(err)
	}

	const (
		horizon  = 72
		thetaCPU = 110.0 // CPU units per node
		thetaMem = 170.0 // memory units per node
		tau      = 0.95
	)
	trainEnd := cpu.Len() * 8 / 10

	buildModel := func(name string, s *robustscale.Series) robustscale.QuantileForecaster {
		cfg := robustscale.DefaultTFTConfig()
		cfg.Epochs = 8
		cfg.Hidden = 24
		cfg.MaxWindows = 96
		cfg.Levels = robustscale.ScalingLevels
		m := robustscale.NewTFT(cfg)
		fmt.Printf("training %s forecaster on %d steps...\n", name, trainEnd)
		if err := m.Fit(s.Slice(0, trainEnd)); err != nil {
			log.Fatal(err)
		}
		return m
	}

	specs := []robustscale.ResourceSpec{
		{Name: "cpu", History: cpu.Slice(0, trainEnd), Forecaster: buildModel("cpu", cpu), Tau: tau, Theta: thetaCPU},
		{Name: "memory", History: mem.Slice(0, trainEnd), Forecaster: buildModel("memory", mem), Tau: tau, Theta: thetaMem},
	}

	plan, err := robustscale.PlanMultiResource(specs, horizon)
	if err != nil {
		log.Fatal(err)
	}

	// Which resource binds when? Print an hourly digest.
	fmt.Println("\njoint 12-hour plan (hourly):")
	fmt.Printf("%-14s %6s %6s %6s  %s\n", "time", "cpu", "mem", "joint", "binding")
	for t := 0; t < horizon; t += 6 {
		ts := cpu.TimeAt(trainEnd + t)
		fmt.Printf("%-14s %6d %6d %6d  %s\n",
			ts.Format("Jan 02 15:04"),
			plan.PerResource["cpu"][t], plan.PerResource["memory"][t],
			plan.Allocations[t], plan.Binding(specs, t))
	}

	// Grade the joint plan and each single-resource plan against what
	// actually happened.
	actuals := map[string][]float64{
		"cpu":    cpu.Values[trainEnd : trainEnd+horizon],
		"memory": mem.Values[trainEnd : trainEnd+horizon],
	}
	fmt.Println("\noutcome vs realized workload:")
	for _, variant := range []struct {
		label string
		alloc []int
	}{
		{"joint plan", plan.Allocations},
		{"cpu-only plan", plan.PerResource["cpu"]},
		{"memory-only plan", plan.PerResource["memory"]},
	} {
		under, over, err := robustscale.EvaluateMultiResource(specs, actuals, variant.alloc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s under-provisioned %5.1f%%, over-provisioned %5.1f%%\n",
			variant.label, 100*under, 100*over)
	}
	fmt.Println("\nonly the joint plan protects both thresholds at once")
}
