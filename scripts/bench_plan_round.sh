#!/usr/bin/env bash
# bench_plan_round.sh — measure and gate the planning fast path.
#
# Runs BenchmarkPlanRound -count N, reduces each sub-benchmark to its
# median ns/op (medians shrug off scheduler noise that would whipsaw a
# mean-based gate), and either:
#
#   save   — write the result to BENCH_plan_round.json as the committed
#            baseline, or
#   check  — fail if, against the committed baseline,
#              * any sub-benchmark's allocs/op changed at all (the
#                zero-alloc steady state is an exact contract), or
#              * any sub-benchmark's ns/op exceeds baseline * BENCH_TOLERANCE
#                (generous, to absorb hardware differences while still
#                catching order-of-magnitude regressions), or
#              * the within-run deepar warm/cold speedup falls below
#                BENCH_MIN_SPEEDUP (hardware-independent: both sides run
#                on the same machine).
#
# The freshly measured JSON is always written to $BENCH_OUT for CI
# artifact upload.
set -euo pipefail

mode="${1:-check}"
cd "$(dirname "$0")/.."

baseline="${2:-BENCH_plan_round.json}"
out="${BENCH_OUT:-/tmp/bench_plan_round.current.json}"
count="${BENCH_COUNT:-5}"
benchtime="${BENCH_TIME:-300ms}"
tolerance="${BENCH_TOLERANCE:-2.5}"
min_speedup="${BENCH_MIN_SPEEDUP:-5}"

raw="$(go test ./internal/scaler/ -run '^$' -bench '^BenchmarkPlanRound$' \
    -benchtime "$benchtime" -count "$count")"
echo "$raw"

names="$(printf '%s\n' "$raw" | awk '
    $1 ~ /^BenchmarkPlanRound\// && $4 == "ns/op" {
        n = $1; sub(/^BenchmarkPlanRound\//, "", n); sub(/-[0-9]+$/, "", n); print n
    }' | sort -u)"
if [ -z "$names" ]; then
    echo "bench_plan_round: no BenchmarkPlanRound results parsed" >&2
    exit 1
fi

rows="{}"
speedup_cold=""
speedup_warm=""
for name in $names; do
    ns_median="$(printf '%s\n' "$raw" | awk -v n="$name" '
        $1 ~ /^BenchmarkPlanRound\// && $4 == "ns/op" {
            b = $1; sub(/^BenchmarkPlanRound\//, "", b); sub(/-[0-9]+$/, "", b)
            if (b == n) print $3
        }' | sort -n | awk '{ a[NR] = $1 } END {
            if (NR % 2) print a[(NR + 1) / 2]
            else printf "%.6g\n", (a[NR / 2] + a[NR / 2 + 1]) / 2
        }')"
    allocs_max="$(printf '%s\n' "$raw" | awk -v n="$name" '
        $1 ~ /^BenchmarkPlanRound\// && $8 == "allocs/op" {
            b = $1; sub(/^BenchmarkPlanRound\//, "", b); sub(/-[0-9]+$/, "", b)
            if (b == n && $7 + 0 > m) m = $7 + 0
        } END { print m + 0 }')"
    bytes_max="$(printf '%s\n' "$raw" | awk -v n="$name" '
        $1 ~ /^BenchmarkPlanRound\// && $6 == "B/op" {
            b = $1; sub(/^BenchmarkPlanRound\//, "", b); sub(/-[0-9]+$/, "", b)
            if (b == n && $5 + 0 > m) m = $5 + 0
        } END { print m + 0 }')"
    rows="$(printf '%s' "$rows" | jq --arg n "$name" \
        --argjson ns "$ns_median" --argjson a "$allocs_max" --argjson by "$bytes_max" \
        '. + {($n): {ns_op: $ns, allocs_op: $a, bytes_op: $by}}')"
    [ "$name" = "deepar-cold" ] && speedup_cold="$ns_median"
    [ "$name" = "deepar-warm" ] && speedup_warm="$ns_median"
done

speedup=0
if [ -n "$speedup_cold" ] && [ -n "$speedup_warm" ]; then
    speedup="$(awk -v c="$speedup_cold" -v w="$speedup_warm" 'BEGIN { printf "%.2f\n", c / w }')"
fi

jq -n --argjson rows "$rows" --argjson speedup "$speedup" \
    --arg go "$(go env GOVERSION)" --arg count "$count" --arg benchtime "$benchtime" \
    '{benchmark: "BenchmarkPlanRound", go: $go,
      count: ($count | tonumber), benchtime: $benchtime,
      warm_speedup: $speedup, rows: $rows}' > "$out"
echo "bench_plan_round: wrote $out"

case "$mode" in
save)
    cp "$out" "$baseline"
    echo "bench_plan_round: baseline saved to $baseline"
    ;;
check)
    if [ ! -f "$baseline" ]; then
        echo "bench_plan_round: missing baseline $baseline (run 'make bench-save')" >&2
        exit 1
    fi
    fail=0
    for name in $(jq -r '.rows | keys[]' "$baseline"); do
        if ! jq -e --arg n "$name" '.rows[$n]' "$out" > /dev/null; then
            echo "FAIL: sub-benchmark $name missing from current run" >&2
            fail=1
            continue
        fi
        base_allocs="$(jq -r --arg n "$name" '.rows[$n].allocs_op' "$baseline")"
        cur_allocs="$(jq -r --arg n "$name" '.rows[$n].allocs_op' "$out")"
        if [ "$base_allocs" != "$cur_allocs" ]; then
            echo "FAIL: $name allocs/op = $cur_allocs, baseline pins $base_allocs exactly" >&2
            fail=1
        fi
        base_ns="$(jq -r --arg n "$name" '.rows[$n].ns_op' "$baseline")"
        cur_ns="$(jq -r --arg n "$name" '.rows[$n].ns_op' "$out")"
        if awk -v b="$base_ns" -v c="$cur_ns" -v t="$tolerance" \
            'BEGIN { exit !(c > b * t) }'; then
            echo "FAIL: $name ns/op = $cur_ns, above baseline $base_ns x tolerance $tolerance" >&2
            fail=1
        fi
    done
    if ! jq -e --argjson min "$min_speedup" '.warm_speedup >= $min' "$out" > /dev/null; then
        echo "FAIL: warm/cold speedup $(jq -r .warm_speedup "$out") below required ${min_speedup}x" >&2
        fail=1
    fi
    if [ "$fail" -ne 0 ]; then
        exit 1
    fi
    echo "bench_plan_round: PASS (warm/cold speedup $(jq -r .warm_speedup "$out")x)"
    ;;
*)
    echo "usage: $0 {save|check} [baseline.json]" >&2
    exit 2
    ;;
esac
