#!/usr/bin/env bash
# fleet_smoke.sh — end-to-end determinism and durability drill for the
# multi-tenant fleet control plane (cmd/fleetsim).
#
# The drill asserts the fleet package's externally visible contracts:
#
#   * two identical runs produce the same fleet hash and the same
#     per-tenant records,
#   * the worker count is invisible in the results (-workers 1 vs 4),
#   * the Prometheus dump carries one tenant-labelled series per tenant,
#   * a fleet stopped at a round boundary (-max-rounds) and restarted on
#     its state dir warm-starts every tenant and finishes bit-identical
#     to an uninterrupted run,
#   * corrupting one tenant's snapshots costs only that tenant its warm
#     start — bystanders stay warm and the final hash is unchanged,
#   * a reduced fleet runs clean under the race detector.
#
# Tunables: FLEET_TENANTS (smoke fleet size, default 200),
# FLEET_ACCEPT_TENANTS (large determinism run, default 1000; 0 skips),
# FLEET_RACE_TENANTS (race-detector run, default 24; 0 skips).
set -euo pipefail
cd "$(dirname "$0")/.."

tenants="${FLEET_TENANTS:-200}"
accept="${FLEET_ACCEPT_TENANTS:-1000}"
race_tenants="${FLEET_RACE_TENANTS:-24}"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

go build -o "$work/fleetsim" ./cmd/fleetsim

fs() { "$work/fleetsim" "$@"; }
hash_of() { jq -r .fleet_hash "$1"; }
# The deterministic per-tenant projection: everything except wall-clock
# timing and derived floats.
tenant_rows() { jq '[.per_tenant[] | {id, alloc_hash, steps, violations, cost_node_steps, final_nodes}]' "$1"; }

echo "== fleet smoke: $tenants tenants =="

echo "-- determinism: two identical runs agree"
fs -tenants "$tenants" -workers 4 -out "$work/a.json" -metrics "$work/a.metrics"
fs -tenants "$tenants" -workers 4 -out "$work/b.json"
[ "$(hash_of "$work/a.json")" = "$(hash_of "$work/b.json")" ]
[ "$(tenant_rows "$work/a.json")" = "$(tenant_rows "$work/b.json")" ]

echo "-- determinism: -workers 1 matches -workers 4"
fs -tenants "$tenants" -workers 1 -out "$work/w1.json"
[ "$(hash_of "$work/w1.json")" = "$(hash_of "$work/a.json")" ]
[ "$(tenant_rows "$work/w1.json")" = "$(tenant_rows "$work/a.json")" ]

echo "-- summary sanity"
jq -e --argjson n "$tenants" '.tenants == $n' "$work/a.json" > /dev/null
jq -e '.rounds > 0 and .steps > 0 and .cost_node_steps > 0' "$work/a.json" > /dev/null
jq -e --argjson n "$tenants" '.cold_starts == $n and .warm_starts == 0' "$work/a.json" > /dev/null
jq -e --argjson n "$tenants" '.per_tenant | length == $n' "$work/a.json" > /dev/null
# One decision record lands per tenant per round.
jq -e '.decisions_total == (.tenants * .rounds)' "$work/a.json" > /dev/null

echo "-- tenant-labelled metrics"
grep -q 'robustscale_fleet_tenant_rounds_total{tenant="t00000"}' "$work/a.metrics"
last="t$(printf '%05d' $((tenants - 1)))"
grep -q "robustscale_fleet_tenant_rounds_total{tenant=\"$last\"}" "$work/a.metrics"
labelled=$(grep -c '^robustscale_fleet_tenant_rounds_total{' "$work/a.metrics")
[ "$labelled" -eq "$tenants" ]
grep -q '^robustscale_fleet_tenant_violations_total{tenant="' "$work/a.metrics"

echo "-- kill-restart: stop at a round boundary, warm-resume bit-identically"
fs -tenants "$tenants" -state-dir "$work/state" -max-rounds 3 -out "$work/p1.json"
jq -e '.rounds == 3' "$work/p1.json" > /dev/null
fs -tenants "$tenants" -state-dir "$work/state" -out "$work/p2.json"
jq -e --argjson n "$tenants" '.warm_starts == $n and .cold_starts == 0' "$work/p2.json" > /dev/null
[ "$(hash_of "$work/p2.json")" = "$(hash_of "$work/a.json")" ]
[ "$(tenant_rows "$work/p2.json")" = "$(tenant_rows "$work/a.json")" ]

echo "-- corrupt one tenant's snapshots: only that tenant cold-starts"
rm -rf "$work/state"
fs -tenants "$tenants" -state-dir "$work/state" -max-rounds 3 -out /dev/null
victim=t00002
ls "$work/state/tenants/$victim"/checkpoint-*.ckpt > /dev/null
for snap in "$work/state/tenants/$victim"/checkpoint-*.ckpt; do
  truncate -s 100 "$snap"
done
fs -tenants "$tenants" -state-dir "$work/state" -out "$work/p3.json"
jq -e --argjson n "$tenants" \
  '.warm_starts == $n - 1 and .cold_starts == 1 and .corrupt_snapshots > 0' \
  "$work/p3.json" > /dev/null
jq -e --arg v "$victim" \
  '.per_tenant | map(select(.id == $v))[0].warm_start == false' "$work/p3.json" > /dev/null
jq -e --arg v "$victim" \
  '[.per_tenant[] | select(.id != $v) | .warm_start] | all' "$work/p3.json" > /dev/null
[ "$(hash_of "$work/p3.json")" = "$(hash_of "$work/a.json")" ]

if [ "$accept" -gt 0 ]; then
  echo "-- scale: $accept tenants, -workers 1 vs 4"
  fs -tenants "$accept" -workers 1 -per-tenant=false -out "$work/big1.json"
  fs -tenants "$accept" -workers 4 -per-tenant=false -out "$work/big4.json"
  [ "$(hash_of "$work/big1.json")" = "$(hash_of "$work/big4.json")" ]
  jq -e --argjson n "$accept" '.tenants == $n' "$work/big1.json" > /dev/null
fi

if [ "$race_tenants" -gt 0 ]; then
  echo "-- race detector: $race_tenants tenants"
  go run -race ./cmd/fleetsim -tenants "$race_tenants" -workers 4 -out /dev/null
fi

echo "fleet smoke: PASS"
