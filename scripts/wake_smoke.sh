#!/usr/bin/env bash
# wake_smoke.sh — serverless scale-to-zero drill for the wake-from-zero
# robustness plane (cmd/fleetsim -serverless, chaos presets wake and
# wake-storm).
#
# Asserts the PR's acceptance contracts:
#
#   * a fault-free serverless fleet is bit-identical across -workers 1
#     vs 4 and across reruns (park/wake decisions, joint count x size
#     hash, wake-latency percentiles),
#   * the fleet actually crosses the zero boundary: parks, wakes and
#     parked steps are all non-zero, and the fault-free p99 wake
#     latency meets the wake SLO,
#   * with -serverless off the summary is bit-identical to a run of the
#     binary from before this change (pinned by the non-serverless runs
#     agreeing with each other and carrying no serverless section),
#   * the wake-storm drill completes with p99 wake latency inside the
#     declared -wake-slo budget (wake_slo_met=true) despite correlated
#     forced wakes plus injected stalls and failures,
#   * wake faults stay with the tenants they strike: blast radius = 0
#     against the fault-free serverless baseline,
#   * a kill-restart mid-wake (-state-dir, -max-rounds under the wake
#     preset) resumes to the uninterrupted run's fleet hash and wake
#     counters,
#   * FuzzWakeSchedule holds its invariants for a short budget, and the
#     serverless wake-chaos path runs clean under the race detector.
#
# Tunables: WAKE_SMOKE_TENANTS (default 12),
# WAKE_SMOKE_RACE_TENANTS (default 8; 0 skips the race run),
# WAKE_SMOKE_FUZZ_SECONDS (default 10; 0 skips the fuzz run).
set -euo pipefail
cd "$(dirname "$0")/.."

tenants="${WAKE_SMOKE_TENANTS:-12}"
race_tenants="${WAKE_SMOKE_RACE_TENANTS:-8}"
fuzz_secs="${WAKE_SMOKE_FUZZ_SECONDS:-10}"
# The serverless archetypes are small single-app tenants; -theta 8 keeps
# node counts meaningful, -days 4 spans several park/wake cycles, and
# the storm drill's SLO budget covers injected stalls (default stall is
# 900 virtual seconds on top of the 30s fault-free wake).
sl="-serverless -days 4 -theta 8"
storm_slo=3600
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

go build -o "$work/fleetsim" ./cmd/fleetsim

fs() { "$work/fleetsim" "$@"; }
hash_of() { jq -r .fleet_hash "$1"; }
tenant_rows() { jq '[.per_tenant[] | {id, alloc_hash, steps, violations, cost_node_steps, parks, wakes, parked_steps}]' "$1"; }
wake_counts() { jq '{parks: .serverless.parks, wakes: .serverless.wakes, failures: .serverless.wake_failures, parked_steps: .serverless.parked_steps, trips: .serverless.breaker_trips}' "$1"; }

echo "== wake smoke: $tenants serverless tenants =="

echo "-- fault-free serverless: bit-identical across workers and reruns"
fs -tenants "$tenants" $sl -workers 1 -out "$work/w1.json"
fs -tenants "$tenants" $sl -workers 4 -out "$work/w4.json"
fs -tenants "$tenants" $sl -workers 4 -out "$work/w4b.json"
[ "$(hash_of "$work/w1.json")" = "$(hash_of "$work/w4.json")" ]
[ "$(hash_of "$work/w4.json")" = "$(hash_of "$work/w4b.json")" ]
[ "$(wake_counts "$work/w1.json")" = "$(wake_counts "$work/w4.json")" ]
[ "$(tenant_rows "$work/w1.json")" = "$(tenant_rows "$work/w4.json")" ]

echo "-- zero boundary exercised: parks, wakes, parked steps; fault-free p99 under SLO"
jq -e '.serverless.parks > 0 and .serverless.wakes > 0 and .serverless.parked_steps > 0' "$work/w1.json" > /dev/null
jq -e '.serverless.wake_slo_met == true' "$work/w1.json" > /dev/null
grep -q '^robustscale_parked_tenants' <(fs -tenants "$tenants" $sl -metrics /dev/stdout -out /dev/null 2>/dev/null)
grep -q '^robustscale_wake_starts_total' <(fs -tenants "$tenants" $sl -metrics /dev/stdout -out /dev/null 2>/dev/null)

echo "-- serverless off: summary carries no serverless state and stays deterministic"
fs -tenants "$tenants" -days 4 -out "$work/plain1.json"
fs -tenants "$tenants" -days 4 -workers 4 -out "$work/plain2.json"
[ "$(hash_of "$work/plain1.json")" = "$(hash_of "$work/plain2.json")" ]
jq -e '.serverless == null' "$work/plain1.json" > /dev/null
jq -e '[.per_tenant[] | select(.parks // 0 > 0 or .wakes // 0 > 0)] | length == 0' "$work/plain1.json" > /dev/null

echo "-- wake-storm drill: p99 wake latency inside the declared SLO budget"
fs -tenants "$tenants" $sl -chaos wake-storm -wake-slo "$storm_slo" -out "$work/storm.json"
jq -e '.serverless.wake_samples > 0' "$work/storm.json" > /dev/null
jq -e '.serverless.wake_slo_met == true' "$work/storm.json" > /dev/null
jq -e --argjson slo "$storm_slo" '.serverless.wake_p99_seconds <= $slo' "$work/storm.json" > /dev/null

echo "-- wake faults: blast radius = 0 against the fault-free serverless baseline"
fs -tenants "$tenants" $sl -chaos wake -baseline "$work/w1.json" -out "$work/wake.json"
jq -e '.serverless.wake_failures > 0' "$work/wake.json" > /dev/null
jq -e '.blast_radius.radius == 0' "$work/wake.json" > /dev/null

echo "-- kill-restart mid-wake: warm resume reproduces the uninterrupted hash"
fs -tenants "$tenants" $sl -chaos wake -out "$work/full.json"
fs -tenants "$tenants" $sl -chaos wake -state-dir "$work/state" -max-rounds 3 -out "$work/k1.json"
fs -tenants "$tenants" $sl -chaos wake -state-dir "$work/state" -out "$work/k2.json"
[ "$(hash_of "$work/k2.json")" = "$(hash_of "$work/full.json")" ]
[ "$(wake_counts "$work/k2.json")" = "$(wake_counts "$work/full.json")" ]
jq -e --argjson n "$tenants" '.warm_starts == $n' "$work/k2.json" > /dev/null

if [ "$fuzz_secs" -gt 0 ]; then
  echo "-- FuzzWakeSchedule: ${fuzz_secs}s budget"
  go test ./internal/fleet/ -run '^$' -fuzz FuzzWakeSchedule -fuzztime "${fuzz_secs}s" > /dev/null
fi

if [ "$race_tenants" -gt 0 ]; then
  echo "-- race detector: $race_tenants tenants, wake-storm preset"
  go run -race ./cmd/fleetsim -tenants "$race_tenants" $sl -chaos wake-storm -workers 4 -out /dev/null
fi

echo "wake smoke: PASS"
