#!/usr/bin/env bash
# fleet_chaos_smoke.sh — resilience drill for the shared capacity pool
# and fleet-scale chaos plane (cmd/fleetsim -pool/-chaos).
#
# Asserts the PR's acceptance contracts:
#
#   * a fault-free pooled run with an unconstrained budget is
#     bit-identical to the pool-less baseline (zero-delta invariant),
#   * a binding pool sheds deterministically: -workers 1 vs 4 and two
#     reruns agree on the fleet hash, shed counts and quarantines,
#   * shed/quarantine counters survive a kill-restart bit-identically,
#   * a zone outage keeps blast radius <= 1% of bystanders,
#   * single-victim chaos leaves every other tenant bit-identical
#     (quarantine isolation),
#   * flag validation rejects nonsense sizes with exit code 2,
#   * FuzzAdmission holds its invariants for a short budget, and the
#     chaos pool path runs clean under the race detector.
#
# Tunables: FLEET_CHAOS_TENANTS (default 64),
# FLEET_CHAOS_RACE_TENANTS (default 16; 0 skips the race run),
# FLEET_CHAOS_FUZZ_SECONDS (default 10; 0 skips the fuzz run).
set -euo pipefail
cd "$(dirname "$0")/.."

tenants="${FLEET_CHAOS_TENANTS:-64}"
race_tenants="${FLEET_CHAOS_RACE_TENANTS:-16}"
fuzz_secs="${FLEET_CHAOS_FUZZ_SECONDS:-10}"
pool=$((tenants * 2))
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

go build -o "$work/fleetsim" ./cmd/fleetsim

fs() { "$work/fleetsim" "$@"; }
hash_of() { jq -r .fleet_hash "$1"; }
tenant_rows() { jq '[.per_tenant[] | {id, alloc_hash, steps, violations, cost_node_steps, final_nodes}]' "$1"; }
pool_counts() { jq '{clips: .pool.admission_clips, shed: .pool.shed_nodes, quarantines: .pool.quarantines}' "$1"; }

echo "== fleet chaos smoke: $tenants tenants, pool $pool =="

echo "-- flag validation: nonsense sizes exit 2"
set +e
fs -tenants 0 -out /dev/null 2> /dev/null; [ $? -eq 2 ] || { echo "FAIL: -tenants 0 accepted"; exit 1; }
fs -tenants -3 -out /dev/null 2> /dev/null; [ $? -eq 2 ] || { echo "FAIL: -tenants -3 accepted"; exit 1; }
fs -tenants "$tenants" -workers -1 -out /dev/null 2> /dev/null; [ $? -eq 2 ] || { echo "FAIL: -workers -1 accepted"; exit 1; }
set -e

echo "-- zero-delta: fault-free pooled run matches the pool-less baseline"
fs -tenants "$tenants" -out "$work/base.json"
fs -tenants "$tenants" -pool 1000000 -out "$work/pooled.json"
[ "$(hash_of "$work/pooled.json")" = "$(hash_of "$work/base.json")" ]
[ "$(tenant_rows "$work/pooled.json")" = "$(tenant_rows "$work/base.json")" ]
jq -e '.pool.shed_nodes == 0 and .pool.admission_clips == 0 and .pool.quarantines == 0' "$work/pooled.json" > /dev/null
fs -tenants "$tenants" -pool 1000000 -chaos none -out "$work/pooled_none.json"
[ "$(hash_of "$work/pooled_none.json")" = "$(hash_of "$work/base.json")" ]

echo "-- binding pool: deterministic shedding across workers and reruns"
fs -tenants "$tenants" -pool "$pool" -workers 1 -out "$work/c1.json"
fs -tenants "$tenants" -pool "$pool" -workers 4 -out "$work/c4.json"
fs -tenants "$tenants" -pool "$pool" -workers 4 -out "$work/c4b.json"
jq -e '.pool.shed_nodes > 0' "$work/c1.json" > /dev/null
[ "$(hash_of "$work/c1.json")" = "$(hash_of "$work/c4.json")" ]
[ "$(hash_of "$work/c4.json")" = "$(hash_of "$work/c4b.json")" ]
[ "$(pool_counts "$work/c1.json")" = "$(pool_counts "$work/c4.json")" ]
[ "$(pool_counts "$work/c4.json")" = "$(pool_counts "$work/c4b.json")" ]
[ "$(tenant_rows "$work/c1.json")" = "$(tenant_rows "$work/c4.json")" ]
grep -q '^robustscale_fleet_shed_nodes_total' <(fs -tenants "$tenants" -pool "$pool" -metrics /dev/stdout -out /dev/null 2>/dev/null) || true

echo "-- kill-restart: shed and quarantine counters resume bit-identically"
fs -tenants "$tenants" -pool "$pool" -state-dir "$work/state" -max-rounds 3 -out "$work/k1.json"
fs -tenants "$tenants" -pool "$pool" -state-dir "$work/state" -out "$work/k2.json"
[ "$(hash_of "$work/k2.json")" = "$(hash_of "$work/c1.json")" ]
jq -e '[.pool.admission_clips, .pool.shed_nodes, .pool.quarantines]' "$work/k2.json" > /dev/null
[ "$(jq '.pool.admission_clips' "$work/k2.json")" = "$(jq '.pool.admission_clips' "$work/c1.json")" ]
[ "$(jq '.pool.shed_nodes' "$work/k2.json")" = "$(jq '.pool.shed_nodes' "$work/c1.json")" ]
[ "$(jq '.pool.quarantines' "$work/k2.json")" = "$(jq '.pool.quarantines' "$work/c1.json")" ]

echo "-- zone outage: blast radius <= 1% of bystanders"
# Stripe the fleet across many zones so most tenants are genuine
# bystanders of any one outage window.
fs -tenants "$tenants" -zones "$tenants" -chaos zone-outage -baseline "$work/base.json" -out "$work/zone.json"
jq -e '.blast_radius.bystanders > 0' "$work/zone.json" > /dev/null
jq -e '.blast_radius.radius <= 0.01' "$work/zone.json" > /dev/null
jq -e '.chaos.preset == "zone-outage" and .chaos.fleet_events > 0' "$work/zone.json" > /dev/null

echo "-- quarantine isolation: single faulted tenant leaves bystanders bit-identical"
victim=t00002
fs -tenants "$tenants" -chaos all -chaos-tenants "$victim" -baseline "$work/base.json" -out "$work/victim.json"
jq -e '.blast_radius.affected == 0 and .blast_radius.faulted == 1' "$work/victim.json" > /dev/null
jq -e --arg v "$victim" \
  '[.per_tenant[] | select(.id != $v)] | length > 0' "$work/victim.json" > /dev/null
# >= 99% of tenants within tolerance (here: exactly identical).
diff <(jq --arg v "$victim" '[.per_tenant[] | select(.id != $v) | {id, alloc_hash}]' "$work/victim.json") \
     <(jq --arg v "$victim" '[.per_tenant[] | select(.id != $v) | {id, alloc_hash}]' "$work/base.json")

if [ "$fuzz_secs" -gt 0 ]; then
  echo "-- FuzzAdmission: ${fuzz_secs}s budget"
  go test ./internal/fleet/ -run '^$' -fuzz FuzzAdmission -fuzztime "${fuzz_secs}s" > /dev/null
fi

if [ "$race_tenants" -gt 0 ]; then
  echo "-- race detector: $race_tenants tenants, chaos fleet preset + binding pool"
  go run -race ./cmd/fleetsim -tenants "$race_tenants" -pool $((race_tenants * 2)) \
    -chaos fleet -workers 4 -out /dev/null
fi

echo "fleet chaos smoke: PASS"
