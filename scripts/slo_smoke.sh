#!/usr/bin/env bash
# slo_smoke.sh — end-to-end drill for the fleet health plane: burn-rate
# alert determinism, readiness probes across a warm restart, and
# cardinality-capped exposition.
#
# The drill asserts the health plane's externally visible contracts:
#
#   * two identical fault-injected replays burn their error budget
#     identically — the deterministic "slo:" summary line matches
#     byte-for-byte and records alert transitions,
#   * alert transitions land in the journal as "alert" events served by
#     /journal?kind=alert, and /slo and /alerts answer with live state,
#   * /healthz answers while the daemon is still training but /readyz
#     stays 503 until training completes; a daemon warm-restarted from a
#     checkpoint flips /readyz to 200 without retraining,
#   * a large fleet with a tight -label-limit keeps the Prometheus
#     exposition bounded: the tenant-labelled series collapse into
#     "other" past the cap and the overflow counter records the rest,
#   * enabling the SLO plane leaves the fleet hash bit-identical.
#
# Tunables: SLO_FLEET_TENANTS (hash-invariance fleet size, default 200),
# SLO_BIG_TENANTS (cardinality run, default 1000; 0 skips).
set -euo pipefail
cd "$(dirname "$0")/.."

tenants="${SLO_FLEET_TENANTS:-200}"
big="${SLO_BIG_TENANTS:-1000}"
work="$(mktemp -d)"
trap 'rm -rf "$work"; kill $(jobs -p) 2>/dev/null || true' EXIT

go build -o "$work/autoscaled" ./cmd/autoscaled
go build -o "$work/fleetsim" ./cmd/fleetsim

echo "== slo smoke =="

echo "-- burn-rate alerts fire deterministically under the all-class chaos preset"
"$work/autoscaled" -days 2 -epochs 2 -chaos all -seed 7 > "$work/r1.log" 2>&1
"$work/autoscaled" -days 2 -epochs 2 -chaos all -seed 7 > "$work/r2.log" 2>&1
grep '^slo:' "$work/r1.log"
[ "$(grep '^slo:' "$work/r1.log")" = "$(grep '^slo:' "$work/r2.log")" ]
transitions=$(sed -En 's/^slo:.* ([0-9]+) transitions.*/\1/p' "$work/r1.log")
[ "${transitions:-0}" -gt 0 ]
grep -q 'first firing tick [0-9]' "$work/r1.log"

echo "-- liveness up while training, readiness 503 until trained"
"$work/autoscaled" -days 7 -epochs 40 -listen 127.0.0.1:18095 > "$work/train.log" 2>&1 &
train_pid=$!
for i in $(seq 1 60); do
  curl -sf http://127.0.0.1:18095/healthz > /dev/null 2>&1 && break
  sleep 1
done
curl -sf http://127.0.0.1:18095/healthz > /dev/null
code=$(curl -s -o /dev/null -w '%{http_code}' http://127.0.0.1:18095/readyz)
[ "$code" = "503" ]
kill "$train_pid" 2>/dev/null || true
wait "$train_pid" 2>/dev/null || true

echo "-- readiness flips to 200 across a warm restart, alerts reach the journal"
"$work/autoscaled" -days 1 -epochs 1 -horizon 12 -chaos all -state-dir "$work/state" \
  -listen 127.0.0.1:18096 > "$work/p1.log" 2>&1 &
p1=$!
for i in $(seq 1 60); do
  code=$(curl -s -o /dev/null -w '%{http_code}' http://127.0.0.1:18096/readyz 2>/dev/null)
  [ "$code" = "200" ] && break
  sleep 1
done
[ "$code" = "200" ]
# The fault-injected replay breaches hard enough that alert transitions
# land in the journal well before the replay ends.
for i in $(seq 1 60); do
  curl -sf 'http://127.0.0.1:18096/journal?kind=alert' 2>/dev/null \
    | jq -e '.events | length > 0' > /dev/null 2>&1 && break
  sleep 1
done
curl -sf 'http://127.0.0.1:18096/journal?kind=alert' | jq -e '.events | length > 0' > /dev/null
curl -sf http://127.0.0.1:18096/slo | jq -e '.observations_total > 0 and .alert_transitions > 0' > /dev/null
curl -sf http://127.0.0.1:18096/alerts | jq -e 'has("active") and (.history | length > 0)' > /dev/null
kill "$p1" 2>/dev/null || true
wait "$p1" 2>/dev/null || true
# Warm restart on the same state dir: no retraining, ready again, and
# the restored SLO window keeps its budget accounting.
"$work/autoscaled" -days 1 -epochs 1 -horizon 12 -chaos all -state-dir "$work/state" \
  -listen 127.0.0.1:18097 > "$work/p2.log" 2>&1 &
p2=$!
for i in $(seq 1 60); do
  code=$(curl -s -o /dev/null -w '%{http_code}' http://127.0.0.1:18097/readyz 2>/dev/null)
  [ "$code" = "200" ] && break
  sleep 1
done
[ "$code" = "200" ]
grep -q "warm start" "$work/p2.log"
! grep -q "training tft" "$work/p2.log"
curl -sf http://127.0.0.1:18097/slo | jq -e '.observations_total > 0' > /dev/null
kill "$p2" 2>/dev/null || true
wait "$p2" 2>/dev/null || true

if [ "$big" -gt 0 ]; then
  echo "-- cardinality guard: $big tenants, -label-limit 64 bounds the exposition"
  "$work/fleetsim" -tenants "$big" -per-tenant=false -label-limit 64 \
    -metrics "$work/big.metrics" -out /dev/null
  labelled=$(grep -c '^robustscale_fleet_tenant_rounds_total{' "$work/big.metrics")
  [ "$labelled" -eq 65 ] # 64 real tenants + the "other" overflow series
  grep -q 'robustscale_fleet_tenant_rounds_total{tenant="other"}' "$work/big.metrics"
  overflow=$(awk -F' ' '/^robustscale_metric_label_overflow_total\{/ {sum += $2} END {print int(sum)}' "$work/big.metrics")
  [ "${overflow:-0}" -gt 0 ]
  total=$(wc -l < "$work/big.metrics")
  [ "$total" -lt 1000 ] # whole dump stays bounded despite 1000 tenants
fi

echo "-- fleet hash is bit-identical with the SLO plane on and off"
"$work/fleetsim" -tenants "$tenants" -per-tenant=false -slo-target 0 -out "$work/off.json"
"$work/fleetsim" -tenants "$tenants" -per-tenant=false -slo-target 0.01 -slo-window 16 -out "$work/on.json"
[ "$(jq -r .fleet_hash "$work/off.json")" = "$(jq -r .fleet_hash "$work/on.json")" ]
jq -e '.slo == null' "$work/off.json" > /dev/null
jq -e '.slo.tick == .rounds' "$work/on.json" > /dev/null

echo "slo smoke: PASS"
