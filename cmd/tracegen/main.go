// Command tracegen generates the synthetic cluster traces used throughout
// the repository and writes them as CSV, or prints summary statistics.
//
// Usage:
//
//	tracegen -dataset alibaba -seed 42 -days 28 -out alibaba.csv
//	tracegen -dataset google -summary
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"robustscale/internal/timeseries"
	"robustscale/internal/trace"
)

func main() {
	log.SetFlags(0)
	var (
		dataset = flag.String("dataset", "alibaba", "trace style: alibaba or google")
		seed    = flag.Int64("seed", 42, "generation seed")
		days    = flag.Int("days", 28, "trace length in days")
		units   = flag.Int("units", 64, "machines/tasks to sample and aggregate")
		out     = flag.String("out", "", "CSV output path (default stdout)")
		summary = flag.Bool("summary", false, "print per-resource summary statistics instead of CSV")
	)
	flag.Parse()

	var cfg trace.Config
	switch *dataset {
	case "alibaba":
		cfg = trace.AlibabaStyle(*seed)
	case "google":
		cfg = trace.GoogleStyle(*seed)
	default:
		log.Fatalf("tracegen: unknown dataset %q (want alibaba or google)", *dataset)
	}
	cfg.Days = *days
	cfg.Units = *units

	tr, err := trace.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *summary {
		printSummary(tr)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		log.Printf("tracegen: wrote %s trace (%d days, %d units) to %s", *dataset, *days, *units, *out)
	}
}

func printSummary(tr *trace.Trace) {
	for _, res := range []trace.Resource{trace.CPU, trace.Memory, trace.Disk} {
		s, err := tr.Series(res)
		if err != nil {
			continue
		}
		fmt.Printf("%-20s steps=%d step=%v mean=%.1f std=%.1f min=%.1f p50=%.1f p95=%.1f max=%.1f\n",
			s.Name, s.Len(), s.Step, s.Mean(), s.Std(), s.Min(),
			s.Quantile(0.5), s.Quantile(0.95), s.Max())
		maxLag := s.Len() / 3
		if maxLag > 2*168*6 {
			maxLag = 2 * 168 * 6 // two weeks at 10-minute steps
		}
		vol, err := timeseries.Characterize(s, maxLag)
		if err != nil {
			fmt.Printf("%-20s (characterization failed: %v)\n", "", err)
			continue
		}
		fmt.Printf("%-20s period=%d (strength %.2f) residualCV=%.3f spikeRate=%.4f\n",
			"", vol.Period, vol.SeasonalStrength, vol.ResidualCV, vol.SpikeRate)
	}
}
