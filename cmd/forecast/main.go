// Command forecast trains, persists and applies workload forecasters from
// the command line.
//
// Train a model on a trace (generated or CSV) and save it:
//
//	forecast -mode train -model tft -dataset alibaba -out tft.model
//	forecast -mode train -model deepar -input trace.csv -resource cpu -out deepar.model
//
// Load a saved model and print quantile forecasts:
//
//	forecast -mode predict -model tft -in tft.model -dataset alibaba -horizon 72 -levels 0.5,0.9
//
// Backtest a model over the tail of a trace, or grid-search
// hyperparameters (the stdlib replacement for the paper's Optuna step):
//
//	forecast -mode backtest -model deepar -dataset google
//	forecast -mode tune -model tft -dataset alibaba
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"robustscale/internal/forecast"
	"robustscale/internal/timeseries"
	"robustscale/internal/trace"
)

func main() {
	log.SetFlags(0)
	var (
		mode       = flag.String("mode", "train", "train or predict")
		model      = flag.String("model", "tft", "tft | deepar | mlp | arima | qb5000")
		dataset    = flag.String("dataset", "", "generate a trace: alibaba or google (alternative to -input)")
		seed       = flag.Int64("seed", 42, "trace seed when generating")
		input      = flag.String("input", "", "CSV trace path (written by tracegen)")
		resource   = flag.String("resource", "cpu", "trace resource column")
		out        = flag.String("out", "", "where to save the trained model")
		in         = flag.String("in", "", "saved model to load for predict")
		horizon    = flag.Int("horizon", 72, "forecast horizon in steps")
		context    = flag.Int("context", 72, "model context window in steps")
		epochs     = flag.Int("epochs", 8, "training epochs for neural models")
		levelsCS   = flag.String("levels", "0.5,0.7,0.9", "comma-separated quantile levels for predict")
		periodFlag = flag.Int("period", 0, "seasonal period for arima in steps (0 = auto-detect from the trace)")
	)
	flag.Parse()

	series, err := loadSeries(*dataset, *input, *resource, *seed)
	if err != nil {
		log.Fatal(err)
	}

	period := *periodFlag
	if period <= 0 {
		maxLag := series.Len() / 3
		if maxLag > 2016 { // two weeks at 10-minute steps
			maxLag = 2016
		}
		if p, derr := timeseries.DetectPeriod(series, 2, maxLag, 0); derr == nil && p > 0 {
			period = p
			if *model == "arima" {
				log.Printf("forecast: auto-detected seasonal period %d steps", period)
			}
		}
	}

	switch *mode {
	case "train":
		if err := train(*model, series, *out, *context, *horizon, *epochs, period); err != nil {
			log.Fatal(err)
		}
	case "predict":
		levels, err := parseLevels(*levelsCS)
		if err != nil {
			log.Fatal(err)
		}
		if err := predict(*model, series, *in, *context, *horizon, *epochs, period, levels); err != nil {
			log.Fatal(err)
		}
	case "backtest":
		if err := backtest(*model, series, *context, *horizon, *epochs, period); err != nil {
			log.Fatal(err)
		}
	case "tune":
		if err := tune(*model, series, *horizon, *epochs); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("forecast: unknown mode %q", *mode)
	}
}

func loadSeries(dataset, input, resource string, seed int64) (*timeseries.Series, error) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := trace.ReadCSV(strings.TrimSuffix(input, ".csv"), f)
		if err != nil {
			return nil, err
		}
		return tr.Series(trace.Resource(resource))
	}
	var cfg trace.Config
	switch dataset {
	case "alibaba", "":
		cfg = trace.AlibabaStyle(seed)
	case "google":
		cfg = trace.GoogleStyle(seed)
	default:
		return nil, fmt.Errorf("forecast: unknown dataset %q", dataset)
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return tr.Series(trace.Resource(resource))
}

// build constructs an untrained model; saved models must be loaded into an
// identically configured instance, so predict reuses this.
func build(model string, context, horizon, epochs, period int) (forecast.Forecaster, error) {
	switch model {
	case "arima":
		return forecast.NewSeasonalARIMA(6, 0, 2, period), nil
	case "mlp":
		return forecast.NewMLP(forecast.MLPConfig{Context: context, Hidden: 48, Epochs: epochs, Seed: 1, MaxWindows: 192}), nil
	case "deepar":
		return forecast.NewDeepAR(forecast.DeepARConfig{
			Context: context, Hidden: 32, Epochs: epochs, Seed: 1,
			MaxWindows: 160, Samples: 100, TrainHorizon: horizon,
		}), nil
	case "tft":
		return forecast.NewTFT(forecast.TFTConfig{
			Context: context, Hidden: 32, Epochs: epochs, Seed: 1,
			MaxWindows: 160, TrainHorizon: horizon,
			Levels: forecast.ScalingLevels,
		}), nil
	case "qb5000":
		return forecast.NewQB5000(forecast.QB5000Config{
			Context: context, Hidden: 24, Epochs: epochs, Seed: 1,
			MaxWindows: 160, TrainHorizon: horizon,
		}), nil
	default:
		return nil, fmt.Errorf("forecast: unknown model %q", model)
	}
}

func train(model string, s *timeseries.Series, out string, context, horizon, epochs, period int) error {
	m, err := build(model, context, horizon, epochs, period)
	if err != nil {
		return err
	}
	if mlp, ok := m.(*forecast.MLP); ok {
		// The MLP trains per horizon.
		if err := mlp.FitHorizon(s, horizon); err != nil {
			return err
		}
	} else if err := m.Fit(s); err != nil {
		return err
	}
	log.Printf("forecast: trained %s on %d steps of %s", m.Name(), s.Len(), s.Name)
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	switch v := m.(type) {
	case *forecast.ARIMA:
		err = v.Save(f)
	case *forecast.MLP:
		err = v.Save(f)
	case *forecast.DeepAR:
		err = v.Save(f)
	case *forecast.TFT:
		err = v.Save(f)
	case *forecast.QB5000:
		err = v.Save(f)
	default:
		err = fmt.Errorf("forecast: %s does not support saving", m.Name())
	}
	if err == nil {
		log.Printf("forecast: saved to %s", out)
	}
	return err
}

func predict(model string, s *timeseries.Series, in string, context, horizon, epochs, period int, levels []float64) error {
	m, err := build(model, context, horizon, epochs, period)
	if err != nil {
		return err
	}
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		switch v := m.(type) {
		case *forecast.ARIMA:
			err = v.Load(f)
		case *forecast.MLP:
			err = v.Load(f)
		case *forecast.DeepAR:
			err = v.Load(f)
		case *forecast.TFT:
			err = v.Load(f)
		case *forecast.QB5000:
			err = v.Load(f)
		default:
			err = fmt.Errorf("forecast: %s does not support loading", m.Name())
		}
		if err != nil {
			return err
		}
	} else if mlp, ok := m.(*forecast.MLP); ok {
		if err := mlp.FitHorizon(s, horizon); err != nil {
			return err
		}
	} else if err := m.Fit(s); err != nil {
		return err
	}

	qf, ok := m.(forecast.QuantileForecaster)
	if !ok {
		pred, err := m.Predict(s, horizon)
		if err != nil {
			return err
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "time\tpoint")
		for t, v := range pred {
			fmt.Fprintf(tw, "%s\t%.1f\n", s.TimeAt(s.Len()+t).Format("Jan 02 15:04"), v)
		}
		return tw.Flush()
	}

	fan, err := qf.PredictQuantiles(s, horizon, levels)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "time")
	for _, l := range levels {
		fmt.Fprintf(tw, "\tP%02.0f", l*100)
	}
	fmt.Fprintln(tw)
	for t := 0; t < horizon; t++ {
		fmt.Fprint(tw, s.TimeAt(s.Len()+t).Format("Jan 02 15:04"))
		for i := range levels {
			fmt.Fprintf(tw, "\t%.1f", fan.Values[t][i])
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// backtest trains the model on the first 70% of the series and reports
// rolling-origin accuracy over the last 20%.
func backtest(model string, s *timeseries.Series, context, horizon, epochs, period int) error {
	m, err := build(model, context, horizon, epochs, period)
	if err != nil {
		return err
	}
	qf, ok := m.(forecast.QuantileForecaster)
	if !ok {
		return fmt.Errorf("forecast: %s is not a quantile forecaster", model)
	}
	trainEnd := s.Len() * 7 / 10
	if mlp, isMLP := m.(*forecast.MLP); isMLP {
		err = mlp.FitHorizon(s.Slice(0, trainEnd), horizon)
	} else {
		err = m.Fit(s.Slice(0, trainEnd))
	}
	if err != nil {
		return err
	}
	res, err := forecast.Backtest(qf, s, forecast.BacktestConfig{
		Start:   s.Len() * 8 / 10,
		Horizon: horizon,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s backtest over %d origins:\n", res.Model, len(res.Origins))
	fmt.Printf("  mean_wQL %.4f  MSE %.1f\n", res.MeanWQL, res.MSE)
	for _, tau := range []float64{0.7, 0.8, 0.9} {
		fmt.Printf("  wQL[%.1f] %.4f  coverage %.3f\n", tau, res.WQL[tau], res.Coverage[tau])
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "origin\tmean_wQL\tMSE")
	for _, o := range res.Origins {
		fmt.Fprintf(tw, "%d\t%.4f\t%.1f\n", o.Origin, o.MeanWQL, o.MSE)
	}
	return tw.Flush()
}

// tune grid-searches a small hyperparameter space for the chosen model
// family, scoring on a validation span — the stdlib stand-in for Optuna.
func tune(model string, s *timeseries.Series, horizon, epochs int) error {
	train := s.Slice(0, s.Len()*7/10)
	val := s.Slice(s.Len()*7/10, s.Len()*9/10)

	var candidates []forecast.Candidate
	switch model {
	case "arima":
		for _, p := range []int{4, 6, 12} {
			p := p
			candidates = append(candidates, forecast.Candidate{
				Label: fmt.Sprintf("arima(%d,0,2)s144", p),
				Build: func() forecast.QuantileForecaster { return forecast.NewSeasonalARIMA(p, 0, 2, 144) },
			})
		}
	case "tft":
		for _, hidden := range []int{16, 24, 32} {
			hidden := hidden
			candidates = append(candidates, forecast.Candidate{
				Label: fmt.Sprintf("tft-h%d", hidden),
				Build: func() forecast.QuantileForecaster {
					return forecast.NewTFT(forecast.TFTConfig{
						Context: 72, Hidden: hidden, Epochs: epochs, Seed: 1,
						MaxWindows: 128, TrainHorizon: horizon,
						Levels: forecast.ScalingLevels,
					})
				},
			})
		}
	case "deepar":
		for _, hidden := range []int{16, 24, 32} {
			hidden := hidden
			candidates = append(candidates, forecast.Candidate{
				Label: fmt.Sprintf("deepar-h%d", hidden),
				Build: func() forecast.QuantileForecaster {
					return forecast.NewDeepAR(forecast.DeepARConfig{
						Context: 72, Hidden: hidden, Epochs: epochs, Seed: 1,
						MaxWindows: 128, Samples: 100, TrainHorizon: horizon,
					})
				},
			})
		}
	default:
		return fmt.Errorf("forecast: tuning not defined for %q", model)
	}

	results, best, err := forecast.Tune(train, val, horizon, forecast.ScalingLevels, candidates)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "candidate\tval mean_wQL")
	for i, r := range results {
		marker := ""
		if i == best {
			marker = "  <- best"
		}
		fmt.Fprintf(tw, "%s\t%.4f%s\n", r.Label, r.Score, marker)
	}
	return tw.Flush()
}

func parseLevels(cs string) ([]float64, error) {
	parts := strings.Split(cs, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("forecast: bad level %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
