// Command experiment regenerates the tables and figures of the paper's
// evaluation. Each artifact has an id; "all" runs everything.
//
// Usage:
//
//	experiment -id table1            # forecaster comparison (Table I)
//	experiment -id fig9 -quick       # scaler comparison, fast settings
//	experiment -id all               # the full evaluation
//	experiment -id fig9 -decisions   # plus the per-round decision audit
//	experiment -id fig9 -trace-out t.json  # plus a Chrome trace of the run
//	experiment -chaos smoke          # guarded-loop resilience, smoke profile
//	experiment -chaos matrix         # fault class x strategy resilience matrix
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"robustscale/internal/experiment"
	"robustscale/internal/fleet"
	"robustscale/internal/obs"
)

var runners = map[string]func(*experiment.Zoo) error{
	"table1": runTable1,
	"table2": runTable2,
	"table3": runTable3,
	"fig5":   runFigure5,
	"fig6":   runFigure6,
	"fig7":   runFigure7,
	"fig8":   runFigure8,
	"fig9":   runFigure9,
	"fig10":  runFigure10,
	"fig11":  runFigure11,
	"fig12":  runFigure12,
}

// order fixes the "all" execution sequence.
var order = []string{
	"table1", "fig6", "fig7", "fig8",
	"fig9", "fig10", "fig11", "fig12",
	"table2", "table3", "fig5",
}

func main() {
	log.SetFlags(0)
	var (
		id        = flag.String("id", "all", "artifact to regenerate: table1|table2|table3|fig5..fig12|all")
		quick     = flag.Bool("quick", false, "use reduced training budgets")
		seed      = flag.Int64("seed", 42, "experiment seed")
		tenant    = flag.String("tenant", obs.DefaultTenant, "tenant id stamped onto decision records and tenant-scoped counters")
		metrics   = flag.Bool("metrics", false, "dump accumulated Prometheus metrics to stdout after the run")
		decisions = flag.Bool("decisions", false, "print the retained per-round scaling decisions after the run")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event JSON file here after the run (implies tracing)")
		chaosProf = flag.String("chaos", "", "run the guarded-loop resilience matrix under this chaos preset (none|forecast|telemetry|apply|node-kill|all|smoke) or 'matrix' for the full sweep")
		chaosJSON = flag.String("chaos-json", "", "with -chaos or -fleet-chaos, also write the resilience report as JSON here")

		fleetChaos      = flag.String("fleet-chaos", "", "run the FLEET resilience matrix under this chaos preset (zone-outage|pool-collapse|admission-reject|fleet|...) or 'matrix' for the standard sweep; reports blast radius per row")
		fleetTenants    = flag.Int("fleet-tenants", 8, "fleet size for -fleet-chaos")
		fleetPool       = flag.Int("fleet-pool", 0, "shared capacity pool for -fleet-chaos (0 = no pool)")
		fleetServerless = flag.Bool("fleet-serverless", false, "run -fleet-chaos in serverless mode; 'matrix' adds the wake-fault rows (wake, wake-storm) and the table gains wake-latency columns")
	)
	flag.Parse()

	if *traceOut != "" {
		obs.DefaultTracer.SetEnabled(true)
	}
	if *decisions {
		obs.DefaultDecisions.SetEnabled(true)
	}

	cfg := experiment.DefaultConfig()
	if *quick {
		cfg = experiment.QuickConfig()
	}
	cfg.Seed = *seed
	cfg.Tenant = *tenant

	z, err := experiment.NewZoo(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *fleetChaos != "" {
		if err := runFleetChaos(*fleetChaos, *fleetTenants, *fleetPool, *fleetServerless, *seed, *chaosJSON); err != nil {
			log.Fatalf("experiment: fleet-chaos: %v", err)
		}
		return
	}
	if *chaosProf != "" {
		if err := runChaos(z, *chaosProf, *chaosJSON); err != nil {
			log.Fatalf("experiment: chaos: %v", err)
		}
		return
	}

	ids := []string{*id}
	if *id == "all" {
		ids = order
	}
	for _, one := range ids {
		run, ok := runners[one]
		if !ok {
			log.Fatalf("experiment: unknown id %q (want %s or all)", one, strings.Join(order, "|"))
		}
		start := time.Now()
		if err := run(z); err != nil {
			log.Fatalf("experiment: %s: %v", one, err)
		}
		fmt.Printf("[%s done in %v]\n", one, time.Since(start).Round(time.Millisecond))
	}
	if *metrics {
		// The same instruments the daemon serves at /metrics, dumped once
		// for quick offline runs: stage latencies, training counters,
		// scaling actions.
		fmt.Println("\n# --- accumulated metrics (Prometheus text format) ---")
		if err := obs.Default.WritePrometheus(os.Stdout); err != nil {
			log.Fatalf("experiment: metrics dump: %v", err)
		}
	}
	if *decisions {
		// The same records the daemon serves at /decisions: one audit line
		// per planning round the bounded store still retains.
		store := obs.DefaultDecisions
		fmt.Printf("\n# --- scaling decisions (%d retained of %d recorded, %d dropped) ---\n",
			store.Len(), store.Total(), store.Dropped())
		for _, d := range store.Decisions() {
			fmt.Println(d.Explain(d.Step))
		}
	}
	if *traceOut != "" {
		if err := obs.DefaultTracer.WriteChromeFile(*traceOut); err != nil {
			log.Fatalf("experiment: writing trace: %v", err)
		}
		log.Printf("experiment: wrote %d spans (%d dropped) to %s",
			obs.DefaultTracer.Len(), obs.DefaultTracer.Dropped(), *traceOut)
	}
}

// runChaos drives the guarded-loop resilience matrix. Decision capture
// is forced on so degraded rounds leave auditable records — the CI smoke
// job asserts they exist.
func runChaos(z *experiment.Zoo, profile, jsonPath string) error {
	obs.DefaultDecisions.SetEnabled(true)
	experiment.Header(os.Stdout, fmt.Sprintf("Resilience matrix (alibaba, chaos=%s)", profile))
	start := time.Now()
	rep, err := experiment.Resilience(z, experiment.Alibaba, profile)
	if err != nil {
		return err
	}
	if err := experiment.RenderResilience(os.Stdout, rep); err != nil {
		return err
	}
	fmt.Printf("[chaos %s done in %v]\n", profile, time.Since(start).Round(time.Millisecond))
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiment.WriteResilienceJSON(f, rep); err != nil {
			return err
		}
		log.Printf("experiment: wrote resilience report to %s", jsonPath)
	}
	return nil
}

// runFleetChaos drives the fleet-scale resilience matrix: one fault-free
// baseline plus one pooled fleet run per chaos preset, each row carrying
// the blast radius measured against the baseline's per-tenant records.
func runFleetChaos(profile string, tenants, pool int, serverless bool, seed int64, jsonPath string) error {
	presets := []string{profile}
	if profile == "matrix" {
		presets = []string{"zone-outage", "pool-collapse", "admission-reject", "fleet"}
		if serverless {
			// Wake faults only mean something when tenants cross the zero
			// boundary; the default matrix is unchanged otherwise.
			presets = append(presets, "wake", "wake-storm")
		}
	}
	cfg := fleet.DefaultConfig(tenants)
	cfg.Days = 3
	cfg.Seed = seed
	cfg.PoolNodes = pool
	cfg.Serverless = serverless
	if serverless {
		// The serverless archetypes carry small per-tenant workloads; the
		// default threshold would pin every tenant at one node and no
		// tenant would ever park or size up.
		cfg.Days = 4
		cfg.Theta = 8
	}
	experiment.Header(os.Stdout, fmt.Sprintf("Fleet resilience matrix (%d tenants, pool=%d, serverless=%v)", tenants, pool, serverless))
	start := time.Now()
	baseline, cells, err := fleet.ResilienceMatrix(cfg, presets, -1, -1)
	if err != nil {
		return err
	}
	wakeCols := ""
	if serverless {
		wakeCols = fmt.Sprintf(" %9s %9s %7s", "wakefail", "wake p99", "wakeSLO")
	}
	fmt.Printf("%-18s %10s %10s %10s %8s %10s %12s%s\n",
		"preset", "violations", "cost", "shed", "quaran", "blast", "affected/by", wakeCols)
	fmt.Printf("%-18s %10d %10d %10s %8s %10s %12s\n",
		"(baseline)", baseline.Violations, baseline.CostNodeSteps, "-", "-", "-", "-")
	for _, c := range cells {
		row := fmt.Sprintf("%-18s %10d %10d %10d %8d %9.4f %9d/%d",
			c.Preset, c.Violations, c.CostNodeSteps, c.ShedNodes, c.Quarantines,
			c.BlastRadius.Radius, c.BlastRadius.Affected, c.BlastRadius.Bystanders)
		if serverless {
			row += fmt.Sprintf(" %9d %8.0fs %7v", c.WakeFailures, c.WakeP99Seconds, c.WakeSLOMet)
		}
		fmt.Println(row)
	}
	fmt.Printf("[fleet-chaos %s done in %v]\n", profile, time.Since(start).Round(time.Millisecond))
	if jsonPath != "" {
		out := struct {
			Baseline *fleet.Report      `json:"baseline"`
			Cells    []fleet.MatrixCell `json:"cells"`
		}{baseline, cells}
		enc, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		log.Printf("experiment: wrote fleet resilience report to %s", jsonPath)
	}
	return nil
}

func runTable1(z *experiment.Zoo) error {
	experiment.Header(os.Stdout, "Table I: forecaster comparison")
	rows, err := experiment.Table1(z)
	if err != nil {
		return err
	}
	return experiment.RenderTable1(os.Stdout, rows)
}

func runTable2(z *experiment.Zoo) error {
	experiment.Header(os.Stdout, "Table II: computation overhead")
	rows, err := experiment.Table2(z)
	if err != nil {
		return err
	}
	return experiment.RenderTable2(os.Stdout, rows)
}

func runTable3(z *experiment.Zoo) error {
	experiment.Header(os.Stdout, "Table III: overhead breakdown")
	rows, err := experiment.Table3(z)
	if err != nil {
		return err
	}
	return experiment.RenderTable3(os.Stdout, rows)
}

func runFigure5(z *experiment.Zoo) error {
	experiment.Header(os.Stdout, "Figure 5: scale-out warm-up vs checkpoint size")
	rows, err := experiment.Figure5(time.Now())
	if err != nil {
		return err
	}
	return experiment.RenderFigure5(os.Stdout, rows)
}

func runFigure6(z *experiment.Zoo) error {
	experiment.Header(os.Stdout, "Figure 6: uncertainty vs accuracy (DeepAR, Google)")
	points, corrMSE, corrQL, err := experiment.Figure6(z, experiment.Google, experiment.ModelDeepAR)
	if err != nil {
		return err
	}
	return experiment.RenderFigure6(os.Stdout, points, corrMSE, corrQL)
}

func runFigure7(z *experiment.Zoo) error {
	experiment.Header(os.Stdout, "Figure 7: prediction intervals (Alibaba)")
	bands, err := experiment.Figure7(z, experiment.Alibaba)
	if err != nil {
		return err
	}
	return experiment.RenderFigure7(os.Stdout, bands)
}

func runFigure8(z *experiment.Zoo) error {
	for _, ds := range []experiment.DatasetName{experiment.Alibaba, experiment.Google} {
		experiment.Header(os.Stdout, fmt.Sprintf("Figure 8: horizon sweep (%s)", ds))
		rows, err := experiment.Figure8(z, ds)
		if err != nil {
			return err
		}
		if err := experiment.RenderFigure8(os.Stdout, rows); err != nil {
			return err
		}
	}
	return nil
}

func runFigure9(z *experiment.Zoo) error {
	for _, ds := range []experiment.DatasetName{experiment.Alibaba, experiment.Google} {
		experiment.Header(os.Stdout, fmt.Sprintf("Figure 9: under-provisioning comparison (%s)", ds))
		rows, err := experiment.Figure9(z, ds)
		if err != nil {
			return err
		}
		if err := experiment.RenderFigure9(os.Stdout, rows); err != nil {
			return err
		}
	}
	return nil
}

func runFigure10(z *experiment.Zoo) error {
	for _, ds := range []experiment.DatasetName{experiment.Alibaba, experiment.Google} {
		experiment.Header(os.Stdout, fmt.Sprintf("Figure 10: quantile-level trade-off (%s, TFT)", ds))
		rows, err := experiment.Figure10(z, ds, experiment.ModelTFT)
		if err != nil {
			return err
		}
		if err := experiment.RenderFigure10(os.Stdout, rows); err != nil {
			return err
		}
	}
	return nil
}

func runFigure11(z *experiment.Zoo) error {
	for _, model := range []experiment.ModelName{experiment.ModelDeepAR, experiment.ModelTFT} {
		experiment.Header(os.Stdout, fmt.Sprintf("Figure 11: adaptive heatmap (Google, %s)", model))
		cells, err := experiment.Figure11(z, experiment.Google, model)
		if err != nil {
			return err
		}
		if err := experiment.RenderFigure11(os.Stdout, cells); err != nil {
			return err
		}
	}
	return nil
}

func runFigure12(z *experiment.Zoo) error {
	experiment.Header(os.Stdout, "Figure 12: uncertainty-threshold sensitivity (Google, TFT)")
	rows, err := experiment.Figure12(z, experiment.Google, experiment.ModelTFT, 0.7, 0.95)
	if err != nil {
		return err
	}
	return experiment.RenderFigure12(os.Stdout, rows)
}
