// Command autoscaled is a long-running auto-scaler daemon driving the
// simulated disaggregated database: it replays a synthetic workload in
// accelerated virtual time, re-plans every horizon with the chosen
// strategy, applies allocations to the cluster, and logs every scaling
// action plus periodic utilization summaries.
//
// Usage:
//
//	autoscaled -strategy robust -tau 0.9 -days 7
//	autoscaled -strategy adaptive -tau 0.7 -tau2 0.95
//	autoscaled -strategy reactive-max -listen :8080   # JSON status endpoint
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"robustscale"
	"robustscale/internal/ops"
)

func main() {
	log.SetFlags(0)
	var (
		dataset  = flag.String("dataset", "alibaba", "workload: alibaba or google")
		seed     = flag.Int64("seed", 42, "trace seed")
		days     = flag.Int("days", 7, "how many days of workload to replay")
		strategy = flag.String("strategy", "robust", "robust | adaptive | reactive-max | reactive-avg")
		tau      = flag.Float64("tau", 0.9, "quantile level (robust) or optimistic level (adaptive)")
		tau2     = flag.Float64("tau2", 0.95, "conservative level for adaptive")
		rho      = flag.Float64("rho", 0, "uncertainty threshold for adaptive (0 = auto-calibrate)")
		theta    = flag.Float64("theta", 100, "per-node workload threshold")
		horizon  = flag.Int("horizon", 72, "planning horizon in steps")
		epochs   = flag.Int("epochs", 6, "forecaster training epochs")
		listen   = flag.String("listen", "", "address for the JSON status endpoint (e.g. :8080; empty disables)")
	)
	flag.Parse()

	var tr *robustscale.Trace
	var err error
	switch *dataset {
	case "alibaba":
		tr, err = robustscale.GenerateAlibabaTrace(*seed)
	case "google":
		tr, err = robustscale.GenerateGoogleTrace(*seed)
	default:
		log.Fatalf("autoscaled: unknown dataset %q", *dataset)
	}
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := tr.Series(robustscale.CPU)
	if err != nil {
		log.Fatal(err)
	}

	stepsPerDay := int((24 * 60) / 10)
	replaySteps := *days * stepsPerDay
	if replaySteps >= cpu.Len()/2 {
		replaySteps = cpu.Len() / 2
	}
	trainEnd := cpu.Len() - replaySteps

	strat, err := buildStrategy(*strategy, cpu.Slice(0, trainEnd), *tau, *tau2, *rho, *theta, *horizon, *epochs)
	if err != nil {
		log.Fatal(err)
	}

	planHorizon := *horizon
	if *strategy == "reactive-max" || *strategy == "reactive-avg" {
		planHorizon = 1
	}

	c, err := robustscale.NewCluster(robustscale.DefaultClusterConfig(), cpu.TimeAt(trainEnd), 1)
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("autoscaled: strategy=%s theta=%.0f horizon=%d replaying %d steps of %s",
		strat.Name(), *theta, planHorizon, replaySteps, cpu.Name)

	registry := ops.NewRegistry(strat.Name(), *theta)
	if *listen != "" {
		mux := http.NewServeMux()
		mux.Handle("/status", registry.Handler())
		mux.Handle("/metrics", registry.MetricsHandler())
		go func() {
			log.Printf("autoscaled: status endpoint on http://%s/status (Prometheus metrics on /metrics)", *listen)
			if err := http.ListenAndServe(*listen, mux); err != nil {
				log.Printf("autoscaled: status endpoint: %v", err)
			}
		}()
	}

	violations, steps := 0, 0
	prevAlloc := 1
	for origin := trainEnd; origin+planHorizon <= cpu.Len(); origin += planHorizon {
		plan, err := strat.Plan(cpu.Slice(0, origin), planHorizon)
		if err != nil {
			log.Fatal(err)
		}
		for i, alloc := range plan {
			t := origin + i
			if err := c.ScaleTo(alloc); err != nil {
				log.Fatal(err)
			}
			if alloc != prevAlloc {
				log.Printf("%s scale %d -> %d nodes (workload %.0f)",
					cpu.TimeAt(t).Format("Jan 02 15:04"), prevAlloc, alloc, cpu.At(t))
				prevAlloc = alloc
			}
			capacity := c.EffectiveCapacity(cpu.Step)
			util := cpu.At(t) / capacity
			if util > *theta {
				violations++
				log.Printf("%s VIOLATION: utilization %.1f > %.0f with %d nodes",
					cpu.TimeAt(t).Format("Jan 02 15:04"), util, *theta, alloc)
			}
			steps++
			c.Advance(cpu.Step)
			registry.Update(func(s *ops.Status) {
				s.VirtualTime = c.Now()
				s.Nodes = alloc
				s.Workload = cpu.At(t)
				s.Utilization = util / *theta
				s.Steps = steps
				s.Violations = violations
				s.ScaleOuts = c.ScaleOuts
				s.ScaleIns = c.ScaleIns
				s.Plan = plan[i+1:]
			})
		}
		// Daily-ish progress summary.
		if (origin-trainEnd)%stepsPerDay < planHorizon {
			log.Printf("%s summary: %d/%d steps, %d violations (%.2f%%), %d scale-outs, %d scale-ins",
				cpu.TimeAt(origin).Format("Jan 02"), steps, replaySteps,
				violations, 100*float64(violations)/float64(steps), c.ScaleOuts, c.ScaleIns)
		}
	}
	fmt.Printf("\nfinal: %d steps, %d violations (%.2f%%), %d scale-outs, %d scale-ins\n",
		steps, violations, 100*float64(violations)/float64(steps), c.ScaleOuts, c.ScaleIns)
}

// buildStrategy trains (when needed) and assembles the requested strategy.
func buildStrategy(name string, train *robustscale.Series, tau, tau2, rho, theta float64, horizon, epochs int) (robustscale.Strategy, error) {
	switch name {
	case "reactive-max":
		return &robustscale.ReactiveMax{Window: 6, Theta: theta}, nil
	case "reactive-avg":
		return &robustscale.ReactiveAvg{Window: 6, HalfLife: 6, Theta: theta}, nil
	case "robust", "adaptive":
		cfg := robustscale.DefaultTFTConfig()
		cfg.Epochs = epochs
		cfg.Hidden = 24
		cfg.MaxWindows = 128
		cfg.TrainHorizon = horizon
		cfg.Levels = robustscale.ScalingLevels
		tft := robustscale.NewTFT(cfg)
		log.Printf("autoscaled: training %s on %d steps...", tft.Name(), train.Len())
		if err := tft.Fit(train); err != nil {
			return nil, err
		}
		if name == "robust" {
			return &robustscale.Robust{Forecaster: tft, Tau: tau, Theta: theta}, nil
		}
		if rho <= 0 {
			// Calibrate rho as the median uncertainty of a forecast made
			// at the end of training.
			fan, err := tft.PredictQuantiles(train, horizon, robustscale.ScalingLevels)
			if err != nil {
				return nil, err
			}
			us, err := robustscale.ForecastUncertainties(fan)
			if err != nil {
				return nil, err
			}
			s := robustscale.NewSeries("u", train.Start, train.Step, us)
			rho = s.Quantile(0.5)
			log.Printf("autoscaled: calibrated rho = %.2f", rho)
		}
		return &robustscale.Adaptive{Forecaster: tft, Tau1: tau, Tau2: tau2, Rho: rho, Theta: theta}, nil
	default:
		return nil, fmt.Errorf("autoscaled: unknown strategy %q", name)
	}
}
