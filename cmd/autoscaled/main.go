// Command autoscaled is a long-running auto-scaler daemon driving the
// simulated disaggregated database: it replays a synthetic workload in
// accelerated virtual time, re-plans every horizon with the chosen
// strategy, applies allocations to the cluster, and logs every scaling
// action plus periodic utilization summaries.
//
// Usage:
//
//	autoscaled -strategy robust -tau 0.9 -days 7
//	autoscaled -strategy adaptive -tau 0.7 -tau2 0.95
//	autoscaled -strategy reactive-max -listen :8080
//	autoscaled -strategy robust -chaos all    # fault-injected replay
//
// Every strategy runs wrapped in the resilience guard (disable with
// -guard=false): quantile fans are validated and repaired, a forecaster
// failure falls back to the last known-good fan and then to a reactive
// rule, and scale actions run through retry-with-backoff and a circuit
// breaker, holding the current fleet when the control plane is down.
// -chaos <preset> injects deterministic faults at every boundary to
// exercise exactly that machinery.
//
// With -listen set, the daemon serves its observability surface on that
// address: /status (JSON snapshot), /metrics (Prometheus text format:
// status gauges, per-stage control-loop latency histograms, training and
// scaling counters, online forecast-calibration gauges), /journal (the
// bounded event journal as JSON, filterable by ?kind= and ?since_seq=),
// /trace (control-loop spans as Chrome trace-event JSON, loadable in
// Perfetto), /decisions (per-round "why did we scale?" records,
// filterable by ?strategy= &from= &to= &tenant=) and /debug/pprof
// (runtime profiles), and keeps serving after the replay until
// interrupted. /healthz answers 200 as soon as the listener binds;
// /readyz answers 503 until training (or warm-start restore) completes,
// then 200 — probes can gate traffic on it. With -slo-target set (the
// default, 1%), the daemon tracks a rolling error budget over
// -slo-window replay steps and evaluates multi-window burn-rate alert
// rules (-burn-windows overrides the defaults) on every step: /slo
// serves the budget state, /alerts the firing rules plus transition
// history, and every transition lands in the journal as an "alert"
// event. -label-limit caps per-metric label cardinality; overflowing
// label values collapse into a single "other" series.
// -tenant labels everything the daemon emits — /status,
// decision records, journal events and the checkpoint fingerprint —
// so several daemons can share a dashboard; the default id is
// "default".
// -trace-out additionally writes the Chrome trace to a file when the
// replay ends, and -explain prints the decision explanation for a
// series step (or "latest") after the run.
//
// With -state-dir set, the daemon is durable: the full control-plane
// state — forecaster weights, calibration window, guard and breaker
// state, journal and decision rings, the current allocation — is
// checkpointed atomically every -checkpoint-interval rounds and on
// shutdown. A restarted daemon warm-starts from the newest valid
// snapshot (falling back past corrupt ones, then to a cold start) and
// resumes the replay where it left off without retraining. SIGINT and
// SIGTERM stop the loop at a round boundary, write a final checkpoint,
// and drain the observability endpoint before exiting.
package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"robustscale"
	"robustscale/internal/chaos"
	"robustscale/internal/cluster"
	"robustscale/internal/forecast"
	"robustscale/internal/obs"
	"robustscale/internal/ops"
	"robustscale/internal/persist"
	"robustscale/internal/scaler"
)

func main() {
	log.SetFlags(0)
	var (
		dataset    = flag.String("dataset", "alibaba", "workload: alibaba or google")
		tenant     = flag.String("tenant", obs.DefaultTenant, "tenant id labelling this daemon's decisions, journal events, metrics and checkpoints")
		seed       = flag.Int64("seed", 42, "trace seed")
		days       = flag.Int("days", 7, "how many days of workload to replay")
		strategy   = flag.String("strategy", "robust", "robust | adaptive | reactive-max | reactive-avg")
		tau        = flag.Float64("tau", 0.9, "quantile level (robust) or optimistic level (adaptive)")
		tau2       = flag.Float64("tau2", 0.95, "conservative level for adaptive")
		rho        = flag.Float64("rho", 0, "uncertainty threshold for adaptive (0 = auto-calibrate)")
		theta      = flag.Float64("theta", 100, "per-node workload threshold")
		horizon    = flag.Int("horizon", 72, "planning horizon in steps")
		epochs     = flag.Int("epochs", 6, "forecaster training epochs")
		listen     = flag.String("listen", "", "address for the JSON status endpoint (e.g. :8080; empty disables)")
		journalCap = flag.Int("journal-cap", 1024, "bounded event journal capacity (entries)")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON file here when the replay ends (implies tracing)")
		explain    = flag.String("explain", "", `print the decision explanation for a series step index, or "latest", after the replay`)

		sloTarget  = flag.Float64("slo-target", 0.01, "violation-rate SLO driving the error-budget tracker and burn-rate alerts (0 disables the SLO plane)")
		sloWindow  = flag.Int("slo-window", 144, "rolling error-budget window in replay steps")
		burnSpec   = flag.String("burn-windows", "", `burn-rate alert rules as "[name=]<factor>x:<long>/<short>,..." (empty = defaults scaled to -slo-window)`)
		labelLimit = flag.Int("label-limit", obs.DefaultLabelLimit, `per-metric label cardinality cap; excess label values collapse into the "other" series (<= 0 = unlimited)`)

		guardOn     = flag.Bool("guard", true, "wrap the strategy in the resilience guard (fan repair, fallback ladder)")
		guardBlowup = flag.Float64("guard-blowup", 8, "sanity bound: clamp forecasts above this multiple of the recent history maximum")
		guardSlack  = flag.Float64("guard-coverage-slack", 0.25, "calibration health: tolerated shortfall of rolling coverage below each nominal level")
		guardMaxWQL = flag.Float64("guard-max-wql", 0, "calibration health: rolling wQL above this marks the forecaster unhealthy (0 disables)")
		shrinkMC    = flag.Bool("shrink-samples", false, "let a demonstrably conservative calibration window shrink Monte-Carlo sample budgets (trades bit-identical planning for latency)")

		applyRetries    = flag.Int("apply-retries", 3, "scale-apply attempts per round (first included)")
		applyBackoff    = flag.Duration("apply-backoff", time.Second, "base backoff between apply retries (doubles per retry)")
		breakerOpenAt   = flag.Int("breaker-threshold", 3, "consecutive failed apply rounds that open the circuit breaker")
		breakerCooldown = flag.Duration("breaker-cooldown", 30*time.Minute, "virtual time the breaker stays open before probing")

		chaosProf = flag.String("chaos", "", "inject deterministic faults from this preset during the replay (forecast|telemetry|apply|node-kill|all|smoke)")
		chaosSeed = flag.Int64("chaos-seed", 0, "chaos schedule seed (0 = use -seed)")

		serverless    = flag.Bool("serverless", false, "serverless mode: the wake guard parks an idle tenant's plan to zero (the physical cluster holds a one-node floor) and wakes it when demand returns")
		idleEps       = flag.Float64("idle-eps", 0, "workload level below which the tenant counts as idle (0 = theta/10)")
		parkAfter     = flag.Int("park-after", 0, "consecutive idle rounds before parking (0 = default 3)")
		wakeDebounce  = flag.Int("wake-debounce", 0, "rounds after a wake during which parking is refused (0 = default 2)")
		keepWarmAfter = flag.Int("keep-warm-after", 0, "consecutive wake failures tripping the wake breaker into keep-warm (0 = default 3)")

		stateDir     = flag.String("state-dir", "", "checkpoint directory for durable warm restarts (empty disables durability)")
		stateRetain  = flag.Int("state-retain", persist.DefaultRetain, "checkpoint snapshots to retain in -state-dir")
		ckptInterval = flag.Int("checkpoint-interval", 1, "write a checkpoint every N planning rounds (with -state-dir)")
		roundDelay   = flag.Duration("round-delay", 0, "wall-clock pause after each planning round (paces the replay for live observation and kill/restart drills)")
	)
	flag.Parse()

	if err := persist.ValidTenantID(*tenant); err != nil {
		log.Fatalf("autoscaled: %v", err)
	}

	// A signal turns into context cancellation: the replay loop checks it
	// at round boundaries, writes a final checkpoint, and drains the
	// observability endpoint instead of dying mid-write.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// The journal is sized before anything records into it; the tracer is
	// enabled only when someone can observe it (-trace-out or -listen),
	// so a bare replay pays the disabled-tracer cost of ~one atomic load
	// per span site.
	if *journalCap != obs.DefaultJournal.Cap() {
		obs.DefaultJournal = obs.NewJournal(*journalCap)
	}
	if *traceOut != "" || *listen != "" {
		obs.DefaultTracer.SetEnabled(true)
	}
	// Decision records are the daemon's reason to exist (-explain,
	// /decisions), so capture is always on here; library consumers stay
	// at the disabled default.
	obs.DefaultDecisions.SetEnabled(true)
	obs.Default.SetLabelLimit(*labelLimit)

	// The SLO tracker exists before the listener binds so /slo and
	// /alerts answer from the first request; it only starts consuming
	// budget once the replay loop observes steps.
	health := obs.NewHealth()
	var slo *obs.SLOTracker
	if *sloTarget > 0 {
		var rules []obs.BurnRule
		if *burnSpec != "" {
			var perr error
			if rules, perr = obs.ParseBurnRules(*burnSpec); perr != nil {
				log.Fatalf("autoscaled: -burn-windows: %v", perr)
			}
			for _, r := range rules {
				if r.Long > *sloWindow {
					log.Fatalf("autoscaled: -burn-windows: rule %s long window %d exceeds -slo-window %d", r.Name, r.Long, *sloWindow)
				}
			}
		}
		if !(*sloTarget < 1) || *sloWindow < 1 {
			log.Fatalf("autoscaled: need 0 < -slo-target < 1 and -slo-window >= 1, got %v/%d", *sloTarget, *sloWindow)
		}
		slo = obs.NewSLOTracker(obs.SLOConfig{Target: *sloTarget, Window: *sloWindow, Rules: rules}).InstrumentDefault()
		slo.Journal = obs.DefaultJournal
		slo.Tenant = *tenant
	}

	// Bind the observability listener before the (potentially long)
	// training phase: an occupied or invalid -listen address fails fast
	// instead of surfacing minutes later — a daemon that silently runs
	// without its observability surface is worse than one that refuses
	// to start — and operators can probe /status while training runs.
	registry := ops.NewRegistry(*strategy, *theta)
	registry.Update(func(s *ops.Status) { s.Tenant = *tenant })
	var httpSrv *http.Server
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatalf("autoscaled: cannot serve observability endpoint on %s: %v", *listen, err)
		}
		mux := http.NewServeMux()
		mux.Handle("/healthz", health.LiveHandler())
		mux.Handle("/readyz", health.ReadyHandler())
		if slo != nil {
			mux.Handle("/slo", slo.Handler())
			mux.Handle("/alerts", slo.AlertsHandler())
		}
		mux.Handle("/status", registry.Handler())
		mux.Handle("/metrics", registry.MetricsHandler())
		mux.Handle("/journal", obs.DefaultJournal.Handler())
		mux.Handle("/trace", obs.DefaultTracer.Handler())
		mux.Handle("/decisions", obs.DefaultDecisions.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		httpSrv = &http.Server{Handler: mux}
		go func() {
			log.Printf("autoscaled: observability endpoint on http://%s (/healthz /readyz /slo /alerts /status /metrics /journal /trace /decisions /debug/pprof)", ln.Addr())
			if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Printf("autoscaled: observability endpoint: %v", err)
			}
		}()
	}

	var tr *robustscale.Trace
	var err error
	switch *dataset {
	case "alibaba":
		tr, err = robustscale.GenerateAlibabaTrace(*seed)
	case "google":
		tr, err = robustscale.GenerateGoogleTrace(*seed)
	default:
		log.Fatalf("autoscaled: unknown dataset %q", *dataset)
	}
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := tr.Series(robustscale.CPU)
	if err != nil {
		log.Fatal(err)
	}

	stepsPerDay := int((24 * 60) / 10)
	replaySteps := *days * stepsPerDay
	if replaySteps >= cpu.Len()/2 {
		replaySteps = cpu.Len() / 2
	}
	trainEnd := cpu.Len() - replaySteps

	// The chaos schedule (when enabled) spans the replay in relative
	// steps; one cursor is shared by the forecaster wrapper and the apply
	// wrapper so injected faults stay aligned with virtual time.
	var sched *chaos.Schedule
	cur := &chaos.Cursor{}
	if *chaosProf != "" {
		prof, err := chaos.Preset(*chaosProf)
		if err != nil {
			log.Fatal(err)
		}
		prof.Seed = *chaosSeed
		if prof.Seed == 0 {
			prof.Seed = *seed
		}
		prof.Steps = replaySteps
		if sched, err = prof.Build(); err != nil {
			log.Fatal(err)
		}
		log.Printf("autoscaled: chaos preset %q armed over %d steps (seed %d)", *chaosProf, replaySteps, prof.Seed)
	}
	wrap := func(qf forecast.QuantileForecaster) forecast.QuantileForecaster {
		if sched == nil {
			return qf
		}
		return &chaos.Forecaster{Inner: qf, Schedule: sched, Cursor: cur}
	}

	planHorizon := *horizon
	if *strategy == "reactive-max" || *strategy == "reactive-avg" {
		planHorizon = 1
	}

	// Durable control plane: recover the newest valid checkpoint before
	// building the strategy, so a warm start restores trained weights
	// instead of retraining. A checkpoint is resumable only if it came
	// from an identical run configuration and its origin lands on a round
	// boundary of this replay.
	fpDataset := *dataset
	if *serverless {
		// Park/wake state cannot resume into (or from) a non-serverless
		// loop; a distinct dataset tag makes such checkpoints cold-start.
		fpDataset += "+serverless"
	}
	fp := persist.Fingerprint{
		Tenant: *tenant, Strategy: *strategy, Dataset: fpDataset, Seed: *seed,
		Theta: *theta, Horizon: *horizon, Tau: *tau, Tau2: *tau2,
	}
	var mgr *persist.Manager
	var recovered *persist.State
	if *stateDir != "" {
		if mgr, err = persist.NewManager(*stateDir, *stateRetain); err != nil {
			log.Fatalf("autoscaled: opening state dir: %v", err)
		}
		st, info, rerr := mgr.Recover()
		for _, p := range info.Rejected {
			log.Printf("autoscaled: rejected corrupt or unreadable checkpoint %s", p)
		}
		switch {
		case rerr != nil:
			log.Printf("autoscaled: no usable checkpoint in %s (%v); cold start", *stateDir, rerr)
		case st == nil:
			// Empty state dir: first run, plain cold start.
		case st.Fingerprint != fp:
			log.Printf("autoscaled: checkpoint %s is from a different run configuration; cold start", info.Path)
		case st.Origin < trainEnd || st.Origin > cpu.Len() || (st.Origin-trainEnd)%planHorizon != 0:
			log.Printf("autoscaled: checkpoint origin %d incompatible with replay [%d, %d); cold start",
				st.Origin, trainEnd, cpu.Len())
		default:
			recovered = st
			log.Printf("autoscaled: recovered checkpoint %s (origin %d, %d nodes, %d steps already replayed)",
				info.Path, st.Origin, st.PrevAlloc, st.Steps)
		}
	}

	effRho := *rho
	var model []byte
	if recovered != nil {
		model = recovered.Forecaster
		if effRho <= 0 && recovered.Rho > 0 {
			// Reuse the rho calibrated at the original cold start instead of
			// recalibrating, so warm-started planning is bit-identical.
			effRho = recovered.Rho
		}
	}
	strat, snapper, rhoUsed, err := buildStrategy(*strategy, cpu.Slice(0, trainEnd), model, *tau, *tau2, effRho, *theta, *horizon, *epochs, wrap)
	if err != nil && model != nil {
		log.Printf("autoscaled: restoring forecaster from checkpoint failed (%v); cold start", err)
		recovered, model = nil, nil
		strat, snapper, rhoUsed, err = buildStrategy(*strategy, cpu.Slice(0, trainEnd), nil, *tau, *tau2, *rho, *theta, *horizon, *epochs, wrap)
	}
	if err != nil {
		log.Fatal(err)
	}
	warm := recovered != nil
	if warm {
		log.Printf("autoscaled: warm start: resuming at replay step %d/%d with restored state (no retraining)",
			recovered.Origin-trainEnd, replaySteps)
	}

	startOrigin, initialAlloc := trainEnd, 1
	if recovered != nil {
		startOrigin = recovered.Origin
		if recovered.PrevAlloc > 0 {
			initialAlloc = recovered.PrevAlloc
		}
	}

	c, err := robustscale.NewCluster(robustscale.DefaultClusterConfig(), cpu.TimeAt(startOrigin), initialAlloc)
	if err != nil {
		log.Fatal(err)
	}

	// The guard wraps the strategy: fans are repaired, forecaster errors
	// fall back down the ladder, and the calibration health gate (wired
	// lazily, once the first fan establishes the levels) pre-empts a
	// forecaster whose rolling coverage has collapsed.
	var calCheck func() (bool, string)
	planner := robustscale.Strategy(strat)
	var guard *scaler.Guard
	if *guardOn {
		guard = &scaler.Guard{
			Inner:  strat,
			Config: scaler.GuardConfig{Theta: *theta, Tau: *tau, BlowupFactor: *guardBlowup},
			Clock:  c.Now,
			Health: func() (bool, string) {
				if calCheck == nil {
					return true, ""
				}
				return calCheck()
			},
		}
		planner = guard
	}

	// Scale actions go through retry-with-backoff and a circuit breaker;
	// when the (possibly chaos-wrapped) control plane keeps failing, the
	// loop holds the current fleet instead of crashing.
	applyFn := c.ScaleTo
	if sched != nil {
		applyFn = chaos.WrapApply(c.ScaleTo, c.Size, sched, cur)
	}
	applier := &scaler.Applier{
		Apply:   applyFn,
		Backoff: scaler.BackoffConfig{MaxAttempts: *applyRetries, Base: *applyBackoff},
		Breaker: &scaler.Breaker{Threshold: *breakerOpenAt, Cooldown: *breakerCooldown},
		Clock:   c.Now,
	}

	// Serverless mode: the wake guard shapes every plan through the
	// park/wake hysteresis. The physical cluster keeps its one-node
	// minimum while parked — the zero lives in the plan and the status
	// surface, which is exactly what a pooled serverless backend would
	// see from this control loop.
	var wakeGuard *scaler.WakeGuard
	effIdleEps := *idleEps
	if effIdleEps <= 0 {
		effIdleEps = *theta / 10
	}
	parkedSteps := 0
	if *serverless {
		wakeGuard = &scaler.WakeGuard{
			Config: scaler.WakeGuardConfig{
				MinIdleRounds:      *parkAfter,
				WakeDebounceRounds: *wakeDebounce,
				KeepWarmAfterFails: *keepWarmAfter,
			},
			Tenant: *tenant,
			Clock:  c.Now,
		}
		log.Printf("autoscaled: serverless mode: park after %d idle rounds below %.2f, wake debounce %d rounds",
			*parkAfter, effIdleEps, *wakeDebounce)
	}

	log.Printf("autoscaled: strategy=%s theta=%.0f horizon=%d replaying %d steps of %s",
		planner.Name(), *theta, planHorizon, replaySteps, cpu.Name)

	// The built strategy may carry a more specific name than the flag
	// (e.g. "tft-0.9" for "robust").
	registry.Update(func(s *ops.Status) { s.Strategy = planner.Name(); s.WarmStart = warm })

	// Quantile strategies retain the fan behind each plan; grade its
	// calibration online over a one-day rolling window.
	var cal *cluster.Calibration
	fanProvider, _ := planner.(scaler.FanProvider)

	// Opt-in latency/fidelity trade: once the calibration window shows
	// every quantile band running conservative, shrink the forecaster's
	// Monte-Carlo sample budget. This deliberately gives up warm/cold
	// bit-identity, so it is off by default.
	armShrinker := func() {
		if !*shrinkMC || cal == nil {
			return
		}
		if sb, ok := snapper.(interface{ SetSampleBudget(func(int) int) }); ok {
			sb.SetSampleBudget(cal.SampleShrinker(*guardSlack, stepsPerDay/4, 0.25))
			log.Printf("autoscaled: calibration-gated Monte-Carlo sample shrinking armed")
		}
	}

	// A warm start restores the rest of the control-plane state. Any
	// single component failing to load degrades to fresh state for that
	// component rather than aborting the recovery.
	if recovered != nil {
		restore := func(name string, blob []byte, load func(io.Reader) error) {
			if len(blob) == 0 {
				return
			}
			if err := load(bytes.NewReader(blob)); err != nil {
				log.Printf("autoscaled: restoring %s state: %v (continuing fresh)", name, err)
			}
		}
		if guard != nil {
			restore("guard", recovered.Guard, guard.Load)
		}
		restore("breaker", recovered.Breaker, applier.Breaker.Load)
		restore("journal", recovered.Journal, obs.DefaultJournal.Load)
		restore("decisions", recovered.Decisions, obs.DefaultDecisions.Load)
		if slo != nil {
			restore("slo", recovered.SLO, slo.Load)
		}
		if wakeGuard != nil && len(recovered.Extra) > 0 {
			var ex daemonExtra
			if derr := gob.NewDecoder(bytes.NewReader(recovered.Extra)).Decode(&ex); derr != nil {
				log.Printf("autoscaled: restoring wake state: %v (continuing fresh)", derr)
			} else {
				parkedSteps = ex.ParkedSteps
				restore("wake guard", ex.Wake, wakeGuard.Load)
			}
		}
		if len(recovered.Calibration) > 0 {
			if loaded, cerr := cluster.LoadCalibration(bytes.NewReader(recovered.Calibration)); cerr != nil {
				log.Printf("autoscaled: restoring calibration state: %v (continuing fresh)", cerr)
			} else {
				cal = loaded
				calCheck = cal.HealthCheck(*guardSlack, *guardMaxWQL, stepsPerDay/4)
				armShrinker()
			}
		}
	}

	violations, steps, holds := 0, 0, 0
	prevAlloc := initialAlloc
	if recovered != nil {
		violations, steps, holds = recovered.Violations, recovered.Steps, recovered.Holds
		registry.Update(func(s *ops.Status) {
			s.VirtualTime = c.Now()
			s.Nodes = prevAlloc
			s.Steps = steps
			s.Violations = violations
			s.ApplyHolds = holds
		})
	}

	// writeCheckpoint snapshots the full control plane as of the given
	// next planning origin. It runs at round boundaries only — never
	// inside the per-step hot path — and a failed write logs and keeps
	// flying: durability must not take down the control loop it protects.
	lastCkpt := -1
	writeCheckpoint := func(nextOrigin int) {
		if mgr == nil {
			return
		}
		blob := func(name string, save func(io.Writer) error) []byte {
			var b bytes.Buffer
			if err := save(&b); err != nil {
				log.Printf("autoscaled: checkpoint: snapshotting %s failed: %v", name, err)
				return nil
			}
			return b.Bytes()
		}
		st := &persist.State{
			SavedAt:     c.Now(),
			Fingerprint: fp,
			Origin:      nextOrigin,
			PrevAlloc:   prevAlloc,
			Steps:       steps,
			Violations:  violations,
			Holds:       holds,
			Rho:         rhoUsed,
		}
		if snapper != nil {
			st.ForecasterKind = "tft"
			if st.Forecaster = blob("forecaster", snapper.Save); st.Forecaster == nil {
				return // a snapshot without the model would warm-start wrong
			}
		}
		if cal != nil {
			st.Calibration = blob("calibration", cal.Save)
		}
		if guard != nil {
			st.Guard = blob("guard", guard.Save)
		}
		st.Breaker = blob("breaker", applier.Breaker.Save)
		if wakeGuard != nil {
			ex := daemonExtra{Wake: blob("wake guard", wakeGuard.Save), ParkedSteps: parkedSteps}
			var b bytes.Buffer
			if err := gob.NewEncoder(&b).Encode(ex); err != nil {
				log.Printf("autoscaled: checkpoint: snapshotting wake state failed: %v", err)
			} else {
				st.Extra = b.Bytes()
			}
		}
		st.Journal = blob("journal", obs.DefaultJournal.Save)
		st.Decisions = blob("decisions", obs.DefaultDecisions.Save)
		if slo != nil {
			st.SLO = blob("slo", slo.Save)
		}
		if _, err := mgr.Write(st); err != nil {
			log.Printf("autoscaled: checkpoint at origin %d failed: %v", nextOrigin, err)
			return
		}
		lastCkpt = nextOrigin
		registry.Update(func(s *ops.Status) { s.CheckpointWrites = int(persist.CheckpointWrites()) })
	}

	// Training (or warm-start restore) is done and the replay is about to
	// consume steps: the daemon is ready. /readyz flips 503 -> 200 here.
	health.SetReady(true)

	// One reusable history view and plan buffer keep the steady-state
	// round allocation-free for in-place strategies: the view shares the
	// trace's backing array, so warm forecasters see a continuous history
	// and advance their cached state instead of reconditioning.
	histView := &robustscale.Series{Name: cpu.Name, Start: cpu.Start, Step: cpu.Step}
	var planBuf []int
	nextOrigin, rounds := startOrigin, 0
	for origin := startOrigin; origin+planHorizon <= cpu.Len(); origin += planHorizon {
		if ctx.Err() != nil {
			log.Printf("autoscaled: shutdown requested; stopping at round boundary (replay step %d)", origin-trainEnd)
			break
		}
		cur.Set(origin - trainEnd)
		histView.Values = cpu.Values[:origin]
		hist := histView
		if sched != nil {
			// Corruption clones the series; warm forecasters notice the
			// broken backing-array identity and recondition from scratch,
			// bit-identically.
			hist = chaos.CorruptTelemetry(hist, sched, origin-trainEnd)
		}
		sp := obs.DefaultTracer.Start("plan-round")
		plan, err := scaler.PlanRound(planner, hist, planHorizon, planBuf)
		sp.EndVirtual(c.Now())
		if plan != nil {
			planBuf = plan
		}
		if err != nil {
			// Even an exhausted fallback ladder must not crash the daemon:
			// hold the current fleet for the round and keep flying.
			if guard == nil {
				log.Fatal(err)
			}
			log.Printf("%s HOLD: planning failed (%v), keeping %d nodes for %d steps",
				cpu.TimeAt(origin).Format("Jan 02 15:04"), err, prevAlloc, planHorizon)
			plan = make([]int, planHorizon)
			for i := range plan {
				plan[i] = prevAlloc
			}
		}
		if wakeGuard != nil {
			// Idleness is judged on the genuine trace (not the chaos-
			// corrupted view) plus the plan: a telemetry fault must not park
			// a loaded tenant.
			idle := true
			for _, v := range plan {
				if v > 1 {
					idle = false
					break
				}
			}
			for i := origin - planHorizon; idle && i < origin; i++ {
				if i >= 0 && cpu.At(i) > effIdleEps {
					idle = false
				}
			}
			tr := wakeGuard.Shape(plan, idle)
			scaler.RecordDecisionAdmitted(planner, *tenant, origin, c.Now(), prevAlloc, plan, 0, wakeReasonOf(tr))
		} else {
			scaler.RecordDecisionFor(planner, *tenant, origin, c.Now(), prevAlloc, plan)
		}
		// The status registry publishes tails of the plan for the whole
		// round while the fast path rewrites its buffer next round, so it
		// gets its own copy.
		statusPlan := append([]int(nil), plan...)
		var fan *robustscale.QuantileForecast
		if fanProvider != nil {
			fan = fanProvider.LastFan()
		}
		if fan != nil && cal == nil {
			if cal, err = cluster.NewCalibration(fan.Levels, stepsPerDay); err != nil {
				log.Fatal(err)
			}
			calCheck = cal.HealthCheck(*guardSlack, *guardMaxWQL, stepsPerDay/4)
			armShrinker()
		}
		absErrSum := 0.0
		for i, alloc := range plan {
			t := origin + i
			cur.Set(t - trainEnd)
			if sched != nil {
				if kills := sched.KillsAt(t - trainEnd); kills > 0 {
					chaos.CountInjected(chaos.NodeKill)
					c.Kill(kills)
					log.Printf("%s FAULT: killed %d node(s), fleet now %d",
						cpu.TimeAt(t).Format("Jan 02 15:04"), kills, c.Size())
					obs.DefaultJournal.RecordTenantAt(c.Now(), *tenant, "fault",
						fmt.Sprintf("failure event killed %d node(s)", kills),
						map[string]float64{"killed": float64(kills), "nodes": float64(c.Size())})
				}
			}
			if wakeGuard != nil && alloc <= 0 {
				// Parked: the plan is zero but the simulated cluster enforces
				// a one-node physical floor, so hold it there and account the
				// step as parked instead of applying a zero.
				parkedSteps++
				alloc = 1
			}
			applyStart := time.Now()
			applySpan := obs.DefaultTracer.Start("apply")
			if err := applier.ScaleTo(alloc); err != nil {
				// Retries and the breaker already did their part; hold the
				// current fleet and try again next step.
				holds++
				log.Printf("%s HOLD: apply to %d nodes failed (%v), keeping %d",
					cpu.TimeAt(t).Format("Jan 02 15:04"), alloc, err, c.Size())
			}
			actual := c.Size()
			if actual != prevAlloc {
				log.Printf("%s scale %d -> %d nodes (workload %.0f)",
					cpu.TimeAt(t).Format("Jan 02 15:04"), prevAlloc, actual, cpu.At(t))
				obs.DefaultJournal.RecordTenantAt(c.Now(), *tenant, "scale",
					fmt.Sprintf("scale %d -> %d nodes", prevAlloc, actual),
					map[string]float64{"from": float64(prevAlloc), "to": float64(actual), "workload": cpu.At(t)})
				prevAlloc = actual
			}
			capacity := c.EffectiveCapacity(cpu.Step)
			util := cpu.At(t) / capacity
			bad := uint64(0)
			if util > *theta {
				violations++
				bad = 1
				log.Printf("%s VIOLATION: utilization %.1f > %.0f with %d nodes",
					cpu.TimeAt(t).Format("Jan 02 15:04"), util, *theta, actual)
				obs.DefaultJournal.RecordTenantAt(c.Now(), *tenant, "violation",
					fmt.Sprintf("utilization %.1f > %.0f with %d nodes", util, *theta, actual),
					map[string]float64{"utilization": util, "theta": *theta, "nodes": float64(actual)})
			}
			if slo != nil {
				// One tick per replayed step, stamped with virtual time, so
				// burn-rate firing rounds are a pure function of the replay.
				slo.ObserveAt(c.Now(), bad, 1)
			}
			steps++
			c.Advance(cpu.Step)
			registry.Update(func(s *ops.Status) {
				s.VirtualTime = c.Now()
				s.Nodes = actual
				s.Workload = cpu.At(t)
				s.Utilization = util / *theta
				s.Steps = steps
				s.Violations = violations
				s.ScaleOuts = c.ScaleOuts
				s.ScaleIns = c.ScaleIns
				s.Plan = statusPlan[i+1:]
				s.ApplyHolds = holds
				if guard != nil {
					s.DegradationMode = guard.Mode().String()
					s.DegradationReason = guard.LastReason()
					s.DegradedRounds = guard.DegradedRounds()
				}
				if wakeGuard != nil {
					s.Parked = wakeGuard.Parked()
					s.KeepWarm = wakeGuard.BreakerOpen()
					s.Parks = int(wakeGuard.Parks())
					s.Wakes = int(wakeGuard.Wakes())
					s.ParkedSteps = parkedSteps
				}
			})
			applySpan.EndVirtual(c.Now())
			ops.ObserveApply(time.Since(applyStart))
			if fan != nil && cal != nil && i < fan.Horizon() {
				if err := cal.Observe(cpu.At(t), fan.Step(i)); err != nil {
					log.Fatal(err)
				}
				absErrSum += abs(cpu.At(t) - fan.At(i, 0.5))
			}
		}
		if fan != nil {
			obs.DefaultJournal.RecordTenantAt(c.Now(), *tenant, "forecast_error",
				fmt.Sprintf("plan round at %s: mean |actual - median forecast| = %.1f",
					cpu.TimeAt(origin).Format("Jan 02 15:04"), absErrSum/float64(len(plan))),
				map[string]float64{"mean_abs_error": absErrSum / float64(len(plan))})
		}
		// Daily-ish progress summary.
		if (origin-trainEnd)%stepsPerDay < planHorizon {
			log.Printf("%s summary: %d/%d steps, %d violations (%.2f%%), %d scale-outs, %d scale-ins",
				cpu.TimeAt(origin).Format("Jan 02"), steps, replaySteps,
				violations, 100*float64(violations)/float64(steps), c.ScaleOuts, c.ScaleIns)
		}
		if wakeGuard != nil && !wakeGuard.Parked() {
			// The simulated apply path provisions instantly, so every round
			// the tenant is awake counts as a healthy wake result and keeps
			// the wake breaker closed.
			wakeGuard.OnWakeResult(true)
		}
		nextOrigin = origin + planHorizon
		rounds++
		if mgr != nil && (*ckptInterval <= 1 || rounds%*ckptInterval == 0) {
			writeCheckpoint(nextOrigin)
		}
		if *roundDelay > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(*roundDelay):
			}
		}
	}
	// Final checkpoint: on shutdown between checkpoints (or with a sparse
	// cadence) this bounds lost progress to zero rounds.
	if mgr != nil && nextOrigin != lastCkpt {
		writeCheckpoint(nextOrigin)
		log.Printf("autoscaled: final checkpoint written (replay step %d)", nextOrigin-trainEnd)
	}
	fmt.Printf("\nfinal: %d steps, %d violations (%.2f%%), %d scale-outs, %d scale-ins\n",
		steps, violations, 100*float64(violations)/float64(steps), c.ScaleOuts, c.ScaleIns)
	if guard != nil {
		fmt.Printf("resilience: %d degraded rounds, %d apply holds, %d node failures, final mode %s\n",
			guard.DegradedRounds(), holds, c.Failures, guard.Mode())
	}
	if wakeGuard != nil {
		fmt.Printf("serverless: %d parks, %d wakes, %d blocked parks, %d parked steps, parked now %v\n",
			wakeGuard.Parks(), wakeGuard.Wakes(), wakeGuard.BlockedParks(), parkedSteps, wakeGuard.Parked())
	}
	if slo != nil {
		// Every figure here is a pure function of the replay in virtual
		// time, so identical runs print an identical line — the slo-smoke
		// CI job diffs it across reruns.
		st := slo.Status()
		firstFire := "none"
		if tick, ok := slo.FirstFiring(); ok {
			firstFire = strconv.FormatUint(tick, 10)
		}
		fmt.Printf("slo: target %g window %d: %d/%d bad steps, budget remaining %.4f, %d transitions, %d active alerts, first firing tick %s\n",
			st.Target, st.Window, st.Bad, st.Total, st.BudgetRemaining, st.Transitions, st.ActiveAlerts, firstFire)
	}
	if cal != nil {
		snap := cal.Snapshot()
		fmt.Printf("calibration over last %d steps: rolling wQL %.4f; coverage", snap.Steps, snap.WQL)
		for i, tau := range snap.Levels {
			fmt.Printf(" %g:%.2f", tau, snap.Coverage[i])
		}
		fmt.Println()
	}
	if *traceOut != "" {
		if err := obs.DefaultTracer.WriteChromeFile(*traceOut); err != nil {
			log.Fatalf("autoscaled: writing trace: %v", err)
		}
		log.Printf("autoscaled: wrote %d spans (%d dropped) to %s",
			obs.DefaultTracer.Len(), obs.DefaultTracer.Dropped(), *traceOut)
	}
	if *explain != "" {
		if err := printExplanation(*explain); err != nil {
			log.Fatalf("autoscaled: %v", err)
		}
	}
	if *listen != "" && ctx.Err() == nil {
		// A daemon asked to expose its observability surface keeps
		// serving it after the replay — postmortem tooling can query
		// /decisions, /trace and /journal at leisure; ^C or SIGTERM
		// ends it gracefully.
		log.Printf("autoscaled: replay complete; serving observability surface until interrupted")
		<-ctx.Done()
	}
	if httpSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("autoscaled: draining observability endpoint: %v", err)
		}
	}
}

// daemonExtra is the owner-defined checkpoint section: wake-guard state
// and the parked-step tally, so a warm restart resumes the park/wake
// machine instead of treating a parked tenant as freshly active.
type daemonExtra struct {
	Wake        []byte
	ParkedSteps int
}

// wakeReasonOf maps a wake transition to the decision-record annotation
// narrated by -explain; an ordinary active round stays unannotated.
func wakeReasonOf(tr scaler.WakeTransition) string {
	switch tr {
	case scaler.WakePark:
		return "parked"
	case scaler.WakeKeepWarm:
		return "keep-warm"
	case scaler.WakeWake:
		return "wake"
	case scaler.WakeHold:
		return "wake-hold"
	}
	return ""
}

// printExplanation resolves the -explain argument — a series step index
// or "latest" — against the recorded decisions and prints the audit
// line.
func printExplanation(arg string) error {
	var d obs.Decision
	var ok bool
	step := 0
	if arg == "latest" {
		if d, ok = obs.DefaultDecisions.Latest(); !ok {
			return fmt.Errorf("no decisions recorded")
		}
		step = d.Step
	} else {
		var err error
		if step, err = strconv.Atoi(arg); err != nil {
			return fmt.Errorf(`-explain wants a step index or "latest": %v`, err)
		}
		if d, ok = obs.DefaultDecisions.At(step); !ok {
			return fmt.Errorf("no decision recorded for step %d", step)
		}
	}
	fmt.Println(d.Explain(step))
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// buildStrategy trains (cold start) or restores (model != nil, warm
// start — zero training epochs) the forecaster and assembles the
// requested strategy. It returns the forecaster's snapshotter for
// checkpointing (nil for the model-free reactive strategies) and the
// uncertainty threshold in effect. wrap is applied to the forecaster
// before it is handed to a strategy — the chaos injector hooks in
// there — but never to the calibration pass, which must see the
// genuine model.
func buildStrategy(name string, train *robustscale.Series, model []byte, tau, tau2, rho, theta float64, horizon, epochs int, wrap func(forecast.QuantileForecaster) forecast.QuantileForecaster) (robustscale.Strategy, forecast.Snapshotter, float64, error) {
	switch name {
	case "reactive-max":
		return &robustscale.ReactiveMax{Window: 6, Theta: theta}, nil, 0, nil
	case "reactive-avg":
		return &robustscale.ReactiveAvg{Window: 6, HalfLife: 6, Theta: theta}, nil, 0, nil
	case "robust", "adaptive":
		cfg := robustscale.DefaultTFTConfig()
		cfg.Epochs = epochs
		cfg.Hidden = 24
		cfg.MaxWindows = 128
		cfg.TrainHorizon = horizon
		cfg.Levels = robustscale.ScalingLevels
		tft := robustscale.NewTFT(cfg)
		if model != nil {
			if err := tft.Load(bytes.NewReader(model)); err != nil {
				return nil, nil, 0, fmt.Errorf("restoring %s from checkpoint: %w", tft.Name(), err)
			}
		} else {
			log.Printf("autoscaled: training %s on %d steps...", tft.Name(), train.Len())
			if err := tft.Fit(train); err != nil {
				return nil, nil, 0, err
			}
		}
		if name == "robust" {
			return &robustscale.Robust{Forecaster: wrap(tft), Tau: tau, Theta: theta}, tft, 0, nil
		}
		if rho <= 0 {
			// Calibrate rho as the median uncertainty of a forecast made
			// at the end of training.
			fan, err := tft.PredictQuantiles(train, horizon, robustscale.ScalingLevels)
			if err != nil {
				return nil, nil, 0, err
			}
			us, err := robustscale.ForecastUncertainties(fan)
			if err != nil {
				return nil, nil, 0, err
			}
			s := robustscale.NewSeries("u", train.Start, train.Step, us)
			rho = s.Quantile(0.5)
			log.Printf("autoscaled: calibrated rho = %.2f", rho)
		}
		return &robustscale.Adaptive{Forecaster: wrap(tft), Tau1: tau, Tau2: tau2, Rho: rho, Theta: theta}, tft, rho, nil
	default:
		return nil, nil, 0, fmt.Errorf("autoscaled: unknown strategy %q", name)
	}
}
