// Command fleetsim drives the sharded multi-tenant control plane: N
// independent auto-scaling tenants — each with its own synthetic
// workload, forecaster, calibration window, guard, breaker and
// checkpoint namespace — replayed in lock-step rounds with forecaster
// inference batched across the worker pool.
//
// Usage:
//
//	fleetsim -tenants 1000                       # 1k-tenant replay, JSON summary on stdout
//	fleetsim -tenants 200 -workers 4 -out s.json # pin the worker count (results identical)
//	fleetsim -tenants 200 -state-dir /tmp/fleet -max-rounds 6   # stop at a round boundary...
//	fleetsim -tenants 200 -state-dir /tmp/fleet                 # ...and warm-resume bit-identically
//
// The summary's fleet_hash folds every tenant's decisions (allocation
// hash, steps, violations, cost) in tenant order: two runs with the same
// flags produce the same hash regardless of -workers, and a
// kill-restart through -state-dir resumes to the hash of an
// uninterrupted run. The timing section is wall-clock and excluded from
// that contract. -metrics dumps the Prometheus registry (tenant-labelled
// fleet counters included) for scraping or CI assertions.
//
// -serverless switches the fleet to the scale-to-zero model: idle
// tenants park to zero nodes after -park-after idle rounds, returning
// demand wakes them with a -wake-seconds cold-start penalty, and the
// planner sizes nodes jointly with count. The summary gains a
// "serverless" section (parks, wakes, wake-failure and latency
// percentiles, wake_slo_met against -wake-slo) and the wake chaos
// presets ("wake", "wake-storm") become meaningful.
//
// With -slo-target set (the default, 1%), the controller tracks a
// fleet-wide rolling error budget over -slo-window rounds and evaluates
// burn-rate alerts (-burn-windows overrides the defaults); the summary
// gains an "slo" section and enabling the plane never changes a single
// allocation or the fleet hash. -label-limit caps per-metric label
// cardinality — at 10k tenants the tenant-labelled series collapse into
// "other" past the cap instead of exploding the scrape. -listen serves
// the health surface (/healthz, /readyz flipping 503 -> 200 once the
// fleet is built, /slo, /alerts, /metrics, /journal, /decisions) and
// keeps serving after the run until interrupted.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"robustscale/internal/fleet"
	"robustscale/internal/obs"
	"robustscale/internal/persist"
)

func main() {
	log.SetFlags(0)
	def := fleet.DefaultConfig(0)
	var (
		tenants      = flag.Int("tenants", 1000, "fleet size")
		seed         = flag.Int64("seed", def.Seed, "fleet master seed (per-tenant seeds derive from it)")
		days         = flag.Int("days", def.Days, "trace length per tenant in days")
		trainDays    = flag.Int("train-days", def.TrainDays, "leading days visible as training history")
		units        = flag.Int("units", def.Units, "machines aggregated into each tenant's trace")
		horizon      = flag.Int("horizon", def.Horizon, "planning horizon in steps")
		theta        = flag.Float64("theta", def.Theta, "per-node workload threshold")
		tau          = flag.Float64("tau", def.Tau, "quantile level (robust) or optimistic level (adaptive)")
		tau2         = flag.Float64("tau2", def.Tau2, "conservative level for adaptive")
		rho          = flag.Float64("rho", 0, "adaptive uncertainty threshold (0 = auto-calibrate per tenant)")
		strategy     = flag.String("strategy", def.Strategy, "robust | adaptive | reactive-max")
		forecaster   = flag.String("forecaster", def.Forecaster, "seasonal-naive | naive | qmlp")
		guard        = flag.Bool("guard", true, "wrap every tenant's strategy in the resilience guard")
		workers      = flag.Int("workers", 0, "worker pool size batching tenant planning (0 = all CPUs; never changes results)")
		stateDir     = flag.String("state-dir", "", "fleet checkpoint root; each tenant snapshots under <dir>/tenants/<id>/ (empty disables durability)")
		ckptInterval = flag.Int("checkpoint-interval", 1, "write per-tenant checkpoints every N fleet rounds (with -state-dir)")
		retain       = flag.Int("state-retain", persist.DefaultRetain, "checkpoint snapshots retained per tenant")
		maxRounds    = flag.Int("max-rounds", 0, "stop after N fleet rounds at a round boundary (0 = run to the end; kill-restart drills resume from here)")
		out          = flag.String("out", "", "write the JSON summary to this file (empty = stdout)")
		metricsOut   = flag.String("metrics", "", "write the Prometheus metrics dump to this file after the run")
		perTenant    = flag.Bool("per-tenant", true, "include per-tenant records in the summary")
		decisions    = flag.Bool("decisions", true, "capture tenant-labelled decision records")

		sloTarget  = flag.Float64("slo-target", def.SLOTarget, "fleet-wide violation-rate SLO driving the error-budget tracker and burn-rate alerts (0 disables the SLO plane; never changes decisions)")
		sloWindow  = flag.Int("slo-window", def.SLOWindow, "rolling error-budget window in fleet rounds")
		burnSpec   = flag.String("burn-windows", "", `burn-rate alert rules as "[name=]<factor>x:<long>/<short>,..." (empty = defaults scaled to -slo-window)`)
		labelLimit = flag.Int("label-limit", obs.DefaultLabelLimit, `per-metric label cardinality cap; excess label values (e.g. tenant ids) collapse into the "other" series (<= 0 = unlimited)`)
		listen     = flag.String("listen", "", "address for the fleet health surface (/healthz /readyz /slo /alerts /metrics /journal /decisions; empty disables)")

		poolNodes    = flag.Int("pool", 0, "shared capacity pool in nodes; admission control clips aggregate demand to it (0 disables — bit-identical to no pool)")
		quarAfter    = flag.Int("quarantine-after", def.QuarantineAfter, "consecutive clipped rounds before a tenant is quarantined to reactive planning (0 disables)")
		quarRounds   = flag.Int("quarantine-rounds", def.QuarantineRounds, "rounds a quarantined tenant plans reactively before re-entry")
		chaosPreset  = flag.String("chaos", "", "fleet chaos preset (none | forecast | telemetry | apply | node-kill | all | smoke | zone-outage | pool-collapse | admission-reject | fleet; empty disables)")
		chaosSeed    = flag.Int64("chaos-seed", 0, "fault-schedule seed (0 = -seed)")
		chaosTenants = flag.String("chaos-tenants", "", "comma-separated tenant ids to enroll in tenant-local chaos (empty = all; fleet-level classes always apply)")
		zones        = flag.Int("zones", def.Zones, "failure domains tenants stripe across for zone-outage chaos")
		baseline     = flag.String("baseline", "", "fault-free summary JSON to measure blast radius against (adds a blast_radius section to stderr log)")
		violTol      = flag.Int("blast-viol-tol", -1, "absolute per-tenant violation drift tolerated before a bystander counts as affected (-1 = default)")
		costTol      = flag.Float64("blast-cost-tol", -1, "fractional per-tenant cost drift tolerated before a bystander counts as affected (-1 = default)")

		serverless    = flag.Bool("serverless", false, "serverless fleet: idle tenants scale to zero, wake from zero with a latency/cost penalty, and size nodes jointly with count (enables the wake chaos presets)")
		idleEps       = flag.Float64("idle-eps", 0, "workload level below which a serverless tenant counts as idle (0 = theta/10)")
		parkAfter     = flag.Int("park-after", 0, "consecutive idle rounds before a serverless tenant parks to zero (0 = default 3)")
		wakeDebounce  = flag.Int("wake-debounce", 0, "rounds after a wake during which parking is refused (flap guard; 0 = default 2)")
		keepWarmAfter = flag.Int("keep-warm-after", 0, "consecutive wake failures tripping the wake breaker into keep-warm degradation (0 = default 3)")
		wakeCooldown  = flag.Int("wake-breaker-cooldown", 0, "rounds the wake breaker stays open before a half-open probe (0 = default 6)")
		wakeSeconds   = flag.Float64("wake-seconds", 0, "fault-free cold-wake provisioning latency in seconds (0 = default 30)")
		wakeCost      = flag.Float64("wake-cost", 0, "cost units charged per wake from zero (0 = default 2)")
		wakeSLO       = flag.Float64("wake-slo", 0, "p99 wake-latency SLO in seconds for the summary's wake_slo_met verdict (0 = default 1800)")
	)
	flag.Parse()

	// Size flags are load-bearing for every derived loop; reject nonsense
	// before it turns into a confusing failure deep in the build.
	if *tenants <= 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: -tenants must be positive, got %d\n", *tenants)
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: -workers must be >= 0 (0 = all CPUs), got %d\n", *workers)
		flag.Usage()
		os.Exit(2)
	}

	var burnRules []obs.BurnRule
	if *burnSpec != "" {
		var err error
		if burnRules, err = obs.ParseBurnRules(*burnSpec); err != nil {
			log.Fatalf("fleetsim: -burn-windows: %v", err)
		}
	}
	cfg := fleet.Config{
		Tenants: *tenants, Seed: *seed,
		Days: *days, TrainDays: *trainDays, Units: *units,
		Horizon: *horizon, Theta: *theta, Tau: *tau, Tau2: *tau2, Rho: *rho,
		Strategy: *strategy, Forecaster: *forecaster, Guard: *guard,
		Workers: *workers, StateDir: *stateDir,
		CheckpointInterval: *ckptInterval, Retain: *retain,
		MaxRounds: *maxRounds, PerTenant: *perTenant,
		SLOTarget: *sloTarget, SLOWindow: *sloWindow, BurnRules: burnRules,
		PoolNodes: *poolNodes, QuarantineAfter: *quarAfter, QuarantineRounds: *quarRounds,
		Chaos: *chaosPreset, ChaosSeed: *chaosSeed, Zones: *zones,
		Serverless: *serverless, IdleEps: *idleEps,
		ParkAfterRounds: *parkAfter, WakeDebounceRounds: *wakeDebounce,
		KeepWarmAfterFails: *keepWarmAfter, WakeBreakerCooldown: *wakeCooldown,
		WakeSeconds: *wakeSeconds, WakeCost: *wakeCost, WakeSLOSeconds: *wakeSLO,
	}
	if *chaosTenants != "" {
		for _, id := range strings.Split(*chaosTenants, ",") {
			if id = strings.TrimSpace(id); id != "" {
				cfg.ChaosTenants = append(cfg.ChaosTenants, id)
			}
		}
	}
	obs.DefaultDecisions.SetEnabled(*decisions)
	obs.Default.SetLabelLimit(*labelLimit)

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// The health surface binds before the (potentially long) fleet build:
	// /healthz and /metrics answer immediately, /readyz stays 503 until
	// every tenant is built, and /slo and /alerts come alive with the
	// controller's tracker.
	health := obs.NewHealth()
	var sloPtr atomic.Pointer[obs.SLOTracker]
	var httpSrv *http.Server
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatalf("fleetsim: cannot serve health surface on %s: %v", *listen, err)
		}
		mux := http.NewServeMux()
		mux.Handle("/healthz", health.LiveHandler())
		mux.Handle("/readyz", health.ReadyHandler())
		mux.Handle("/slo", sloHandler(&sloPtr, (*obs.SLOTracker).Handler))
		mux.Handle("/alerts", sloHandler(&sloPtr, (*obs.SLOTracker).AlertsHandler))
		mux.Handle("/metrics", obs.Default.Handler())
		mux.Handle("/journal", obs.DefaultJournal.Handler())
		mux.Handle("/decisions", obs.DefaultDecisions.Handler())
		httpSrv = &http.Server{Handler: mux}
		go func() {
			log.Printf("fleetsim: health surface on http://%s (/healthz /readyz /slo /alerts /metrics /journal /decisions)", ln.Addr())
			if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Printf("fleetsim: health surface: %v", err)
			}
		}()
	}

	t0 := time.Now()
	ctrl, err := fleet.New(cfg)
	if err != nil {
		log.Fatalf("fleetsim: %v", err)
	}
	if slo := ctrl.SLO(); slo != nil {
		sloPtr.Store(slo)
	}
	health.SetReady(true)
	buildSecs := time.Since(t0).Seconds()
	log.Printf("fleetsim: built %d tenants in %.2fs (strategy=%s forecaster=%s workers=%d)",
		cfg.Tenants, buildSecs, cfg.Strategy, cfg.Forecaster, cfg.Workers)

	t0 = time.Now()
	rep, err := ctrl.Run(ctx)
	if err != nil {
		log.Fatalf("fleetsim: %v", err)
	}
	log.Printf("fleetsim: replayed %d rounds (%d tenant-steps) in %.2fs; violations %.3f%%, cost %d node-steps, fleet hash %s",
		rep.Rounds, rep.Steps, time.Since(t0).Seconds(),
		100*rep.ViolationRate, rep.CostNodeSteps, rep.FleetHash)
	if s := rep.Serverless; s != nil {
		log.Printf("fleetsim: serverless: %d parks, %d wakes (%d failed, %d breaker trips), %d parked steps; wake p99 %.0fs vs SLO %.0fs (met=%v)",
			s.Parks, s.Wakes, s.WakeFailures, s.BreakerTrips, s.ParkedSteps,
			s.WakeP99Seconds, s.WakeSLOSeconds, s.WakeSLOMet)
	}

	if *baseline != "" {
		br, err := blastRadiusAgainst(*baseline, rep, *violTol, *costTol)
		if err != nil {
			log.Fatalf("fleetsim: -baseline: %v", err)
		}
		rep.BlastRadius = &br
		log.Printf("fleetsim: blast radius %.4f (%d/%d bystanders affected, %d tenants faulted)",
			br.Radius, br.Affected, br.Bystanders, br.Faulted)
	}
	if err := writeSummary(rep, *out); err != nil {
		log.Fatalf("fleetsim: %v", err)
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut); err != nil {
			log.Fatalf("fleetsim: %v", err)
		}
	}
	if *listen != "" && ctx.Err() == nil {
		log.Printf("fleetsim: run complete; serving health surface until interrupted")
		<-ctx.Done()
	}
	if httpSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("fleetsim: draining health surface: %v", err)
		}
	}
}

// sloHandler defers to the given SLOTracker handler once the controller
// exists; until then (or with the SLO plane disabled) it answers 503 so
// probes can tell "not yet" from "never".
func sloHandler(p *atomic.Pointer[obs.SLOTracker], h func(*obs.SLOTracker) http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		slo := p.Load()
		if slo == nil {
			http.Error(w, "slo plane not available", http.StatusServiceUnavailable)
			return
		}
		h(slo).ServeHTTP(w, req)
	})
}

// blastRadiusAgainst loads a fault-free baseline summary and measures
// how far this run's faults leaked beyond the tenants they target.
func blastRadiusAgainst(path string, rep *fleet.Report, violTol int, costTol float64) (fleet.BlastRadius, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fleet.BlastRadius{}, fmt.Errorf("reading baseline summary: %w", err)
	}
	var base fleet.Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fleet.BlastRadius{}, fmt.Errorf("parsing baseline summary: %w", err)
	}
	return fleet.MeasureBlastRadius(&base, rep, violTol, costTol)
}

// writeSummary encodes the report as indented JSON to the file or
// stdout.
func writeSummary(rep *fleet.Report, path string) error {
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding summary: %w", err)
	}
	if path == "" {
		fmt.Println(string(enc))
		return nil
	}
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing summary: %w", err)
	}
	return nil
}

// writeMetrics dumps the process-wide Prometheus registry to a file.
func writeMetrics(path string) error {
	var b strings.Builder
	if err := obs.Default.WritePrometheus(&b); err != nil {
		return fmt.Errorf("rendering metrics: %w", err)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("writing metrics: %w", err)
	}
	return nil
}
