module robustscale

go 1.22
